// Tests for the distributed primitives: Linial coloring, deg+1 list
// coloring, MIS, maximal matching, and ruling sets — validity on a spread
// of graph families plus round-complexity sanity (log* shape).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/ledger.hpp"
#include "primitives/linial.hpp"
#include "primitives/list_coloring.hpp"
#include "primitives/maximal_matching.hpp"
#include "primitives/mis.hpp"
#include "primitives/ruling_set.hpp"

namespace deltacolor {
namespace {

std::vector<Graph> test_graphs() {
  std::vector<Graph> gs;
  gs.push_back(path_graph(40));
  gs.push_back(cycle_graph(41));
  gs.push_back(complete_graph(9));
  gs.push_back(torus_grid(6, 7));
  gs.push_back(random_tree(120, 5));
  gs.push_back(random_graph(80, 0.1, 6));
  gs.push_back(random_regular(60, 4, 7));
  {
    CliqueInstanceOptions opt;
    opt.num_cliques = 12;
    opt.delta = 8;
    opt.clique_size = 8;
    gs.push_back(clique_blowup_instance(opt).graph);
  }
  return gs;
}

// --- Linial -------------------------------------------------------------------

TEST(Linial, ProperColoringOnFamilies) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    const LinialResult res = linial_coloring(g, ledger);
    ASSERT_EQ(res.color.size(), g.num_nodes());
    EXPECT_TRUE(is_proper_coloring(g, res.color, res.num_colors))
        << "n=" << g.num_nodes() << " delta=" << g.max_degree();
    EXPECT_EQ(ledger.total(), res.rounds);
  }
}

TEST(Linial, PaletteIsDeltaSquaredish) {
  Graph g = random_regular(512, 6, 3);
  g.set_ids(shuffled_ids(512, 11));
  RoundLedger ledger;
  const LinialResult res = linial_coloring(g, ledger);
  // Fixed point is q^2 for the smallest valid prime q > Delta + 1.
  EXPECT_LE(res.num_colors, 4 * (6 + 4) * (6 + 4));
}

TEST(Linial, RoundsGrowLikeLogStar) {
  // log*-shaped: rounds should stay tiny even as n grows by 64x.
  for (const NodeId n : {256u, 4096u, 16384u}) {
    Graph g = random_regular(n, 4, n);
    g.set_ids(shuffled_ids(n, n + 1));
    RoundLedger ledger;
    const LinialResult res = linial_coloring(g, ledger);
    EXPECT_TRUE(is_proper_coloring(g, res.color, res.num_colors));
    EXPECT_LE(res.rounds, 8);
  }
}

TEST(Linial, AdversarialIdsStillProper) {
  Graph g = cycle_graph(64);
  std::vector<std::uint64_t> ids(64);
  for (NodeId v = 0; v < 64; ++v) ids[v] = (v % 2 == 0) ? v : (1ull << 40) + v;
  g.set_ids(ids);
  RoundLedger ledger;
  const LinialResult res = linial_coloring(g, ledger);
  EXPECT_TRUE(is_proper_coloring(g, res.color, res.num_colors));
}

TEST(Linial, EmptyAndSingleton) {
  RoundLedger ledger;
  Graph g0(0, {});
  EXPECT_EQ(linial_coloring(g0, ledger).num_colors, 1);
  Graph g1(1, {});
  const auto r1 = linial_coloring(g1, ledger);
  EXPECT_TRUE(is_proper_coloring(g1, r1.color, r1.num_colors));
}

// --- deg+1 list coloring --------------------------------------------------------

TEST(DegPlusOne, DeltaPlusOneColoringEverywhere) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    std::vector<Color> color(g.num_nodes(), kNoColor);
    NodeMask active(g.num_nodes(), 1);
    const auto lists = uniform_lists(g, g.max_degree() + 1);
    deg_plus_one_list_color(g, active, lists, color, ledger);
    EXPECT_TRUE(is_proper_coloring(g, color, g.max_degree() + 1));
  }
}

TEST(DegPlusOne, RespectsArbitraryLists) {
  Graph g = cycle_graph(10);
  std::vector<std::vector<Color>> lists(10);
  for (NodeId v = 0; v < 10; ++v)
    lists[v] = {static_cast<Color>(100 + v % 3), static_cast<Color>(7),
                static_cast<Color>(200 + v % 4)};
  RoundLedger ledger;
  std::vector<Color> color(10, kNoColor);
  NodeMask active(10, 1);
  deg_plus_one_list_color(g, active, lists, color, ledger);
  EXPECT_TRUE(respects_lists(g, color, lists));
}

TEST(DegPlusOne, PartialInstanceExtendsColoring) {
  Graph g = complete_graph(6);  // Delta = 5
  std::vector<Color> color(6, kNoColor);
  color[0] = 3;
  color[1] = 1;
  NodeMask active = {0, 0, 1, 1, 1, 1};
  const auto lists = uniform_lists(g, 6);
  RoundLedger ledger;
  deg_plus_one_list_color(g, active, lists, color, ledger);
  EXPECT_TRUE(is_proper_coloring(g, color, 6));
  EXPECT_EQ(color[0], 3);  // pre-colored nodes untouched
  EXPECT_EQ(color[1], 1);
}

TEST(DegPlusOne, PreconditionViolationThrows) {
  Graph g = complete_graph(4);
  std::vector<Color> color(4, kNoColor);
  NodeMask active(4, 1);
  const auto lists = uniform_lists(g, 3);  // needs >= 4 colors
  RoundLedger ledger;
  EXPECT_THROW(deg_plus_one_list_color(g, active, lists, color, ledger),
               std::logic_error);
}

TEST(DegPlusOne, ActiveNodeAlreadyColoredThrows) {
  Graph g = path_graph(3);
  std::vector<Color> color = {0, kNoColor, kNoColor};
  NodeMask active(3, 1);
  RoundLedger ledger;
  EXPECT_THROW(
      deg_plus_one_list_color(g, active, uniform_lists(g, 3), color, ledger),
      std::logic_error);
}

TEST(DegPlusOne, RandomizedVariantMatchesGuarantees) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    std::vector<Color> color(g.num_nodes(), kNoColor);
    NodeMask active(g.num_nodes(), 1);
    const auto lists = uniform_lists(g, g.max_degree() + 1);
    deg_plus_one_list_color_randomized(g, active, lists, color, 99, ledger);
    EXPECT_TRUE(is_proper_coloring(g, color, g.max_degree() + 1));
  }
}

TEST(DegPlusOne, EmptyActiveSetIsNoop) {
  Graph g = path_graph(5);
  std::vector<Color> color(5, kNoColor);
  NodeMask active(5, 0);
  RoundLedger ledger;
  EXPECT_EQ(deg_plus_one_list_color(g, active, uniform_lists(g, 3), color,
                                    ledger),
            0);
  EXPECT_EQ(ledger.total(), 0);
}

// --- MIS ------------------------------------------------------------------------

TEST(Mis, DeterministicIsMaximalIndependent) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    const auto set = mis_deterministic(g, ledger);
    EXPECT_TRUE(is_maximal_independent_set(g, set));
    EXPECT_GT(ledger.total(), 0);
  }
}

TEST(Mis, LubyIsMaximalIndependent) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    const auto set = mis_luby(g, 31337, ledger);
    EXPECT_TRUE(is_maximal_independent_set(g, set));
  }
}

TEST(Mis, LubyRoundsLogarithmic) {
  RoundLedger small_ledger, big_ledger;
  mis_luby(random_regular(128, 4, 1), 7, small_ledger);
  mis_luby(random_regular(8192, 4, 2), 7, big_ledger);
  EXPECT_LE(big_ledger.total(), 8 * std::max<std::int64_t>(
                                        1, small_ledger.total()));
}

// --- maximal matching -------------------------------------------------------------

TEST(Matching, DeterministicIsMaximal) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    const auto m = maximal_matching_deterministic(g, ledger);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Matching, RandomizedIsMaximal) {
  for (const Graph& g : test_graphs()) {
    RoundLedger ledger;
    const auto m = maximal_matching_randomized(g, 4242, ledger);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Matching, EdgelessGraph) {
  Graph g(7, {});
  RoundLedger ledger;
  const auto m = maximal_matching_deterministic(g, ledger);
  EXPECT_TRUE(m.empty());
}

// --- ruling sets -------------------------------------------------------------------

TEST(RulingSet, IndependenceAndDomination) {
  for (const Graph& g : test_graphs()) {
    if (g.num_nodes() == 0) continue;
    RoundLedger ledger;
    const RulingSetResult rs = ruling_set(g, ledger);
    EXPECT_TRUE(is_independent_set(g, rs.in_set));
    EXPECT_TRUE(dominates_within(g, rs.in_set, rs.domination_radius))
        << "claimed radius " << rs.domination_radius;
  }
}

TEST(RulingSet, NonEmptyOnNonEmptyGraph) {
  Graph g = cycle_graph(30);
  RoundLedger ledger;
  const RulingSetResult rs = ruling_set(g, ledger);
  int members = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (rs.in_set[v]) ++members;
  EXPECT_GE(members, 1);
}

TEST(RulingSet, DominationRadiusIsLogDeltaShaped) {
  // The radius bound depends on the Linial palette (O(log Delta) bits),
  // not on n.
  RoundLedger ledger;
  const auto r1 = ruling_set(random_regular(256, 4, 3), ledger);
  const auto r2 = ruling_set(random_regular(4096, 4, 4), ledger);
  EXPECT_EQ(r1.domination_radius, r2.domination_radius);
}

}  // namespace
}  // namespace deltacolor
