// Oracle-parity and boundary tests for the word-parallel palette kernels
// (common/palette.hpp) and the per-worker scratch arena (common/arena.hpp),
// plus the allocation-counting hook that pins the "no heap allocation in a
// steady-state engine round" contract.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "bench_support/workloads.hpp"
#include "common/arena.hpp"
#include "common/palette.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "graph/generators.hpp"
#include "local/context.hpp"
#include "local/sync_runner.hpp"
#include "primitives/list_coloring.hpp"

// ---------------------------------------------------------------------------
// Allocation-counting hook: every global new/delete in this binary bumps a
// counter. Tests sample the counter around a region and assert on the delta.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace deltacolor {
namespace {

// ---------------------------------------------------------------------------
// PaletteSet vs std::set<Color> oracle
// ---------------------------------------------------------------------------

// Widths straddle the word size: sub-word, exact words, and ragged tails.
const int kWidths[] = {1, 3, 63, 64, 65, 127, 128, 200, 1024};

std::vector<Color> members_of(const PaletteSet& s) {
  std::vector<Color> out;
  s.for_each([&](Color c) { out.push_back(c); });
  return out;
}

TEST(PaletteSet, RandomizedOracleParity) {
  for (const int width : kWidths) {
    PaletteSet set(width);
    std::set<Color> oracle;
    std::uint64_t state = 0x9e3779b97f4a7c15ull + static_cast<unsigned>(width);
    auto draw = [&]() { return state = hash_mix(state, 1, 2); };
    for (int step = 0; step < 500; ++step) {
      const Color c = static_cast<Color>(draw() % static_cast<unsigned>(width));
      if (draw() % 2 == 0) {
        if (!oracle.count(c)) set.insert(c);
        oracle.insert(c);
      } else {
        set.erase(c);
        oracle.erase(c);
      }
      ASSERT_EQ(set.count(), static_cast<int>(oracle.size()));
      ASSERT_EQ(set.contains(c), oracle.count(c) == 1);
      // Full ascending enumeration matches the ordered oracle.
      const std::vector<Color> got = members_of(set);
      const std::vector<Color> want(oracle.begin(), oracle.end());
      ASSERT_EQ(got, want);
      // first_free / nth_free agree with ordered indexing.
      ASSERT_EQ(set.first_free(), want.empty() ? kNoColor : want.front());
      if (!want.empty()) {
        const int k = static_cast<int>(draw() % want.size());
        ASSERT_EQ(set.nth_free(k), want[static_cast<std::size_t>(k)]);
        const std::uint64_t d = draw();
        ASSERT_EQ(set.sample_free(d),
                  want[static_cast<std::size_t>(
                      d % static_cast<std::uint64_t>(want.size()))]);
      }
      ASSERT_EQ(set.nth_free(static_cast<int>(want.size())), kNoColor);
    }
  }
}

TEST(PaletteSet, RemoveAllMatchesSetDifference) {
  for (const int width : {65, 200}) {
    std::uint64_t state = 42;
    auto draw = [&]() { return state = hash_mix(state, 3, 4); };
    for (int trial = 0; trial < 50; ++trial) {
      PaletteSet a(width), b(width);
      std::set<Color> oa, ob;
      for (int i = 0; i < width / 2; ++i) {
        const Color ca =
            static_cast<Color>(draw() % static_cast<unsigned>(width));
        const Color cb =
            static_cast<Color>(draw() % static_cast<unsigned>(width));
        if (oa.insert(ca).second) a.insert(ca);
        if (ob.insert(cb).second) b.insert(cb);
      }
      // intersect_count == |A and B| by oracle.
      std::vector<Color> inter;
      std::set_intersection(oa.begin(), oa.end(), ob.begin(), ob.end(),
                            std::back_inserter(inter));
      EXPECT_EQ(a.intersect_count(b), static_cast<int>(inter.size()));
      a.remove_all(b);
      std::vector<Color> want;
      for (const Color c : oa)
        if (!ob.count(c)) want.push_back(c);
      EXPECT_EQ(members_of(a), want);
    }
  }
}

TEST(PaletteSet, SpanRemoveAllIgnoresNoColorAndOutOfRange) {
  PaletteSet s(10);
  s.fill();
  const Color drops[] = {kNoColor, 3, 100, -5, 7, 10};
  s.remove_all(std::span<const Color>(drops));
  EXPECT_EQ(members_of(s), (std::vector<Color>{0, 1, 2, 4, 5, 6, 8, 9}));
}

TEST(PaletteSet, EmptyPaletteBoundary) {
  PaletteSet s(0);
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.first_free(), kNoColor);
  EXPECT_EQ(s.nth_free(0), kNoColor);
  EXPECT_FALSE(s.contains(0));
  s.fill();  // no-op on width 0
  EXPECT_EQ(s.count(), 0);
  s.erase(5);  // out-of-range erase is a no-op, not UB
  EXPECT_EQ(s.count(), 0);
}

TEST(PaletteSet, FullPaletteAndRaggedTail) {
  for (const int width : kWidths) {
    PaletteSet s(width);
    s.fill();
    ASSERT_EQ(s.count(), width) << "width " << width;
    ASSERT_EQ(s.first_free(), 0);
    ASSERT_EQ(s.nth_free(width - 1), width - 1);
    ASSERT_EQ(s.nth_free(width), kNoColor);
    // fill() must not leak bits above the ragged tail: contains() past the
    // width is false and the count stays exact.
    EXPECT_FALSE(s.contains(width));
    EXPECT_FALSE(s.contains(kNoColor));
  }
}

TEST(PaletteSet, ResetReusesStorageAcrossWidths) {
  PaletteSet s(1024);
  s.fill();
  s.reset(65);  // shrink: stale high words must not resurface
  EXPECT_EQ(s.count(), 0);
  s.insert(64);
  EXPECT_EQ(s.first_free(), 64);
  s.reset(1024);  // grow back within the high-water capacity
  EXPECT_EQ(s.count(), 0);
  EXPECT_FALSE(s.contains(64));
}

// ---------------------------------------------------------------------------
// ColorLists vs nested-vector oracle
// ---------------------------------------------------------------------------

TEST(ColorLists, NestedConversionRoundTrips) {
  const std::vector<std::vector<Color>> nested = {
      {5, 1, 9}, {}, {2}, {7, 7, 0}};
  const ColorLists lists = nested;  // implicit conversion
  ASSERT_EQ(lists.size(), nested.size());
  EXPECT_FALSE(lists.empty());
  std::size_t total = 0;
  for (std::size_t v = 0; v < nested.size(); ++v) {
    const std::span<const Color> got = lists[v];
    ASSERT_EQ(std::vector<Color>(got.begin(), got.end()), nested[v]);
    total += nested[v].size();
  }
  EXPECT_EQ(lists.total_colors(), total);
  EXPECT_EQ(lists.max_color(), 9);
}

TEST(ColorLists, IncrementalBuildMatchesAddList) {
  ColorLists a, b;
  a.push(3);
  a.push(1);
  a.close_list();
  a.close_list();  // empty list for node 1
  a.push(4);
  a.close_list();
  const std::vector<Color> l0 = {3, 1}, l2 = {4};
  b.add_list(l0);
  b.add_list({});
  b.add_list(l2);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t v = 0; v < 3; ++v) {
    const auto sa = a[v];
    const auto sb = b[v];
    EXPECT_EQ(std::vector<Color>(sa.begin(), sa.end()),
              std::vector<Color>(sb.begin(), sb.end()));
  }
  EXPECT_EQ(a.max_color(), 4);
}

TEST(ColorLists, UniformMatchesManualLoop) {
  const ColorLists lists = ColorLists::uniform(5, 3);
  ASSERT_EQ(lists.size(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    const auto span = lists[v];
    EXPECT_EQ(std::vector<Color>(span.begin(), span.end()),
              (std::vector<Color>{0, 1, 2}));
  }
  EXPECT_EQ(lists.max_color(), 2);
  EXPECT_EQ(lists.total_colors(), 15u);
}

TEST(ColorLists, EmptyStates) {
  const ColorLists fresh;
  EXPECT_TRUE(fresh.empty());
  EXPECT_EQ(fresh.total_colors(), 0u);
  EXPECT_EQ(fresh.max_color(), kNoColor);
  // A list of empty lists is non-empty (it has nodes) with no colors.
  const ColorLists hollow = std::vector<std::vector<Color>>{{}, {}};
  EXPECT_FALSE(hollow.empty());
  EXPECT_EQ(hollow.size(), 2u);
  EXPECT_EQ(hollow.total_colors(), 0u);
}

// ---------------------------------------------------------------------------
// ScratchArena
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// SIMD dispatch parity: every supported level computes bit-identically to
// the forced-scalar table on the same palettes, across widths straddling
// the kMinWords dispatch cutoff (8 words = 512 colors).
// ---------------------------------------------------------------------------

struct LevelGuard {
  ~LevelGuard() { simd::reset_level(); }
};

TEST(SimdDispatch, AllLevelsMatchScalarReference) {
  LevelGuard guard;
  const simd::Level levels[] = {simd::Level::kScalar, simd::Level::kAvx2,
                                simd::Level::kNeon};
  const int widths[] = {64, 511, 512, 513, 640, 1000, 4096};
  for (const int width : widths) {
    // Deterministic pseudo-random palettes, plus all-zero / all-one /
    // single-bit-at-the-end edge cases.
    std::vector<std::pair<PaletteSet, PaletteSet>> cases;
    std::uint64_t state = static_cast<std::uint64_t>(width) * 2654435761u;
    auto next = [&]() { return state = hash_mix(state, 5, 7); };
    for (int rep = 0; rep < 4; ++rep) {
      PaletteSet a(width), b(width);
      for (Color c = 0; c < width; ++c) {
        if (next() & 1) a.insert(c);
        if (next() & 2) b.insert(c);
      }
      cases.emplace_back(std::move(a), std::move(b));
    }
    {
      PaletteSet empty(width), full(width), last(width);
      for (Color c = 0; c < width; ++c) full.insert(c);
      last.insert(width - 1);
      cases.emplace_back(empty, full);
      cases.emplace_back(full, empty);
      cases.emplace_back(last, full);
    }

    // Scalar reference pass.
    ASSERT_TRUE(simd::force_level(simd::Level::kScalar));
    struct Ref {
      int count, inter;
      Color first, nth, removed_first;
    };
    std::vector<Ref> ref;
    for (const auto& [a, b] : cases) {
      PaletteSet t = a;
      t.remove_all(b);
      const int cnt = a.count();
      ref.push_back({cnt, a.intersect_count(b), a.first_free(),
                     a.nth_free(cnt > 0 ? cnt - 1 : 0), t.first_free()});
    }

    for (const simd::Level level : levels) {
      if (!simd::level_supported(level)) continue;
      ASSERT_TRUE(simd::force_level(level));
      for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto& [a, b] = cases[i];
        PaletteSet t = a;
        t.remove_all(b);
        EXPECT_EQ(a.count(), ref[i].count)
            << simd::to_string(level) << " width=" << width;
        EXPECT_EQ(a.intersect_count(b), ref[i].inter)
            << simd::to_string(level) << " width=" << width;
        EXPECT_EQ(a.first_free(), ref[i].first)
            << simd::to_string(level) << " width=" << width;
        EXPECT_EQ(a.nth_free(ref[i].count > 0 ? ref[i].count - 1 : 0),
                  ref[i].nth)
            << simd::to_string(level) << " width=" << width;
        EXPECT_EQ(t.first_free(), ref[i].removed_first)
            << simd::to_string(level) << " width=" << width;
      }
    }
  }
}

TEST(SimdDispatch, NthFreeOutOfRangeIsNoColorAtEveryLevel) {
  LevelGuard guard;
  const simd::Level levels[] = {simd::Level::kScalar, simd::Level::kAvx2,
                                simd::Level::kNeon};
  PaletteSet s(1024);
  for (Color c = 0; c < 1024; c += 3) s.insert(c);
  const int cnt = s.count();
  for (const simd::Level level : levels) {
    if (!simd::level_supported(level)) continue;
    ASSERT_TRUE(simd::force_level(level));
    EXPECT_EQ(s.nth_free(cnt), kNoColor) << simd::to_string(level);
    EXPECT_EQ(s.nth_free(cnt + 100), kNoColor) << simd::to_string(level);
    EXPECT_EQ(s.nth_free(0), 0) << simd::to_string(level);
  }
}

TEST(SimdDispatch, ForceUnsupportedLevelIsRejected) {
  LevelGuard guard;
  const simd::Level before = simd::active_level();
#if defined(__x86_64__)
  EXPECT_FALSE(simd::force_level(simd::Level::kNeon));
#elif defined(__aarch64__)
  EXPECT_FALSE(simd::force_level(simd::Level::kAvx2));
#endif
  EXPECT_EQ(simd::active_level(), before);
}

TEST(ScratchArena, AllocationsAre32ByteAligned) {
  // SIMD kernels may use aligned vector loads on arena-carved scratch, so
  // every allocation lands on a 32-byte absolute address — including small
  // types, overflow-path blocks, and re-used capacity after reset().
  ScratchArena arena;
  for (int round = 0; round < 3; ++round) {
    for (const std::size_t count : {1u, 7u, 64u, 1000u}) {
      const auto* bytes = arena.alloc<std::uint8_t>(count);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(bytes) %
                    ScratchArena::kMinAlign,
                0u);
      const auto* words = arena.alloc<std::uint64_t>(count);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(words) %
                    ScratchArena::kMinAlign,
                0u);
    }
    arena.reset();  // coalesces overflow; next round exercises warm path
  }
}

TEST(ScratchArena, FrameRestoresBumpPointer) {
  ScratchArena arena;
  {
    ScratchArena::Frame warm(arena);
    warm.alloc<int>(1024);
  }
  arena.reset();  // coalesce: the primary buffer now has capacity
  {
    ScratchArena::Frame outer(arena);
    int* a = outer.alloc<int>(8);
    ASSERT_NE(a, nullptr);
    const std::size_t after_outer = arena.used();
    {
      ScratchArena::Frame inner(arena);
      double* b = inner.alloc<double>(4);
      ASSERT_NE(b, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
      EXPECT_GT(arena.used(), after_outer);
    }
    EXPECT_EQ(arena.used(), after_outer);
  }
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ScratchArena, OverflowCoalescesAtReset) {
  ScratchArena arena;
  arena.reset();
  const std::size_t before_growth = arena.growth_count();
  {
    ScratchArena::Frame f(arena);
    // Force repeated overflow in one epoch; writes must not alias.
    std::uint64_t* p1 = f.alloc<std::uint64_t>(1000);
    std::uint64_t* p2 = f.alloc<std::uint64_t>(2000);
    std::uint64_t* p3 = f.alloc<std::uint64_t>(4000);
    for (int i = 0; i < 1000; ++i) p1[i] = 1;
    for (int i = 0; i < 2000; ++i) p2[i] = 2;
    for (int i = 0; i < 4000; ++i) p3[i] = 3;
    EXPECT_EQ(p1[999], 1u);
    EXPECT_EQ(p2[0], 2u);
    EXPECT_EQ(p3[3999], 3u);
  }
  EXPECT_GT(arena.growth_count(), before_growth);
  arena.reset();  // coalesce: capacity now covers the whole epoch
  const std::size_t warm_growth = arena.growth_count();
  const std::size_t warm_capacity = arena.capacity();
  {
    ScratchArena::Frame f(arena);
    f.alloc<std::uint64_t>(1000);
    f.alloc<std::uint64_t>(2000);
    f.alloc<std::uint64_t>(4000);
  }
  EXPECT_EQ(arena.growth_count(), warm_growth) << "warm epoch re-grew";
  EXPECT_EQ(arena.capacity(), warm_capacity);
}

TEST(ScratchArena, ManySmallOverflowsStayGeometric) {
  // A cold chunk with thousands of small frames must open O(log) overflow
  // blocks, not one per frame (the bump-within-last-block path).
  ScratchArena arena;
  arena.reset();
  {
    ScratchArena::Frame f(arena);
    f.alloc<std::byte>(1);  // consume the (empty) primary buffer
    for (int i = 0; i < 10000; ++i) {
      int* p = f.alloc<int>(16);
      p[0] = i;
    }
  }
  EXPECT_LT(arena.growth_count(), 16u);
}

// ---------------------------------------------------------------------------
// Steady-state allocation contract
// ---------------------------------------------------------------------------

// A linial-style step: per node, carve (degree+1) scratch from the frame and
// fold neighbor states through it. Once the arena and engine buffers are
// warm, additional rounds must perform zero heap allocations.
TEST(SteadyState, EngineRoundsAreAllocationFree) {
  const Graph g = random_regular(64, 6, 1);
  std::vector<int> init(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) init[v] = static_cast<int>(v);
  SyncRunner<int> runner(g, init, EngineOptions{.num_threads = 1});
  auto step = [](const SyncRunner<int>::View& view) {
    ScratchArena::Frame frame(ScratchArena::local());
    const std::size_t n = static_cast<std::size_t>(view.degree()) + 1;
    int* scratch = frame.alloc<int>(n);
    std::size_t i = 0;
    scratch[i++] = view.self();
    for (const NodeId u : view.neighbors()) scratch[i++] = view.neighbor(u);
    int acc = view.round();
    for (std::size_t j = 0; j < i; ++j) acc ^= scratch[j] * 31;
    return acc;
  };
  auto never = [](const std::vector<int>&) { return false; };
  runner.run(4, step, never);  // warm-up: arena reaches high water
  const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
  const int rounds = runner.run(64, step, never);
  const std::size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(rounds, 64);
  EXPECT_EQ(after - before, 0u)
      << "warm engine rounds must not touch the heap";
}

// End-to-end: repeated warm runs of the deg+1 list-coloring engine allocate
// a flat amount (setup only — state buffers, result vector), i.e. the
// per-round path adds nothing. Asserting run2 == run3 avoids counting the
// one-time thread_local/arena warm-up of the first run.
TEST(SteadyState, DegPlusOneAllocationsFlatAcrossWarmRuns) {
  const Graph g = bench::hard_instance(32, 12, 5).graph;
  const ColorLists lists = uniform_lists(g, g.max_degree() + 1);
  auto run_once = [&]() {
    RoundLedger ledger;
    LocalContext ctx(ledger, EngineOptions{.num_threads = 1}, 7);
    std::vector<Color> color(g.num_nodes(), kNoColor);
    NodeMask active(g.num_nodes(), 1);
    const std::size_t before = g_alloc_count.load(std::memory_order_relaxed);
    deg_plus_one_list_color(g, active, lists, color, ctx);
    return g_alloc_count.load(std::memory_order_relaxed) - before;
  };
  run_once();  // warm-up
  const std::size_t second = run_once();
  const std::size_t third = run_once();
  EXPECT_EQ(second, third);
}

}  // namespace
}  // namespace deltacolor
