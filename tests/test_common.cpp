// Unit tests for the common utilities: statistics/fitting, the PRNG, the
// thread pool's caller-bounded dispatch, and the round ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "local/ledger.hpp"

namespace deltacolor {
namespace {

// --- stats -----------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 100});
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.mean, 22.0);
  EXPECT_GT(s.stddev, 0);
  EXPECT_FALSE(format_summary(s).empty());
}

TEST(Stats, SummaryEvenCountMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 4}).median, 2.5);
  const Summary empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0);
}

TEST(Stats, LinearFitExact) {
  const LinearFit f = fit_linear({1, 2, 3, 4}, {5, 7, 9, 11});  // y = 3+2x
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, LinearFitDegenerate) {
  EXPECT_EQ(fit_linear({1}, {2}).slope, 0);          // too few points
  EXPECT_EQ(fit_linear({3, 3, 3}, {1, 2, 3}).slope, 0);  // vertical
  EXPECT_THROW(fit_linear({1, 2}, {1}), std::logic_error);  // size mismatch
}

TEST(Stats, LogFitRecoversLogarithmicData) {
  std::vector<double> n, y;
  for (double k = 8; k <= 20; ++k) {
    n.push_back(std::pow(2.0, k));
    y.push_back(10 + 3 * k);  // 10 + 3*log2(n)
  }
  const LinearFit f = fit_log(n, y);
  EXPECT_NEAR(f.slope, 3.0, 1e-6);
  EXPECT_NEAR(f.intercept, 10.0, 1e-6);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, LogStarValues) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(1e18), 5);
}

// --- rng -------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  Rng a2(42);
  EXPECT_NE(a2(), c());
}

TEST(RngTest, BelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> bucket(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.below(10);
    ASSERT_LT(x, 10u);
    ++bucket[static_cast<std::size_t>(x)];
  }
  for (const int b : bucket) {
    EXPECT_GT(b, 700);
    EXPECT_LT(b, 1300);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, HashMixStableAndSpread) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2, 4));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(2, 2, 3));
}

// --- ledger ----------------------------------------------------------------

TEST(Ledger, ChargesAccumulatePerPhase) {
  RoundLedger l;
  l.charge("a", 3);
  l.charge("b", 5, 2);
  l.charge("a", 1);
  EXPECT_EQ(l.total(), 14);
  EXPECT_EQ(l.phase_total("a"), 4);
  EXPECT_EQ(l.phase_total("b"), 10);
  EXPECT_EQ(l.phase_total("missing"), 0);
  EXPECT_NE(l.report().find("TOTAL: 14"), std::string::npos);
}

TEST(Ledger, MergeAndClear) {
  RoundLedger a, b;
  a.charge("x", 2);
  b.charge("x", 3);
  b.charge("y", 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 6);
  EXPECT_EQ(a.phase_total("x"), 5);
  a.clear();
  EXPECT_EQ(a.total(), 0);
  EXPECT_TRUE(a.phases().empty());
}

TEST(Ledger, RejectsNegativeCharges) {
  RoundLedger l;
  EXPECT_THROW(l.charge("a", -1), std::logic_error);
  EXPECT_THROW(l.charge("a", 1, 0), std::logic_error);
}

TEST(Ledger, PhaseOrderIsFirstChargeOrder) {
  RoundLedger l;
  l.charge("z", 1);
  l.charge("a", 1);
  l.charge("z", 1);
  ASSERT_EQ(l.phases().size(), 2u);
  EXPECT_EQ(l.phases()[0].first, "z");
  EXPECT_EQ(l.phases()[1].first, "a");
}

// --- ThreadPool::for_chunks edge cases -------------------------------------

TEST(ThreadPoolChunks, EmptyBoundsRunNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  // front == back: the span is empty and fn must never run, even though
  // the bounds vector itself is well-formed.
  pool.for_chunks({7, 7, 7, 7, 7},
                  [&](int, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolChunks, OneOversizedChunkCarriesAllTheWork) {
  ThreadPool pool(4);
  // Worker 2 owns the whole span; the other chunks are empty. Every index
  // must still be covered exactly once, by that worker.
  std::mutex mu;
  std::vector<std::pair<int, std::pair<std::size_t, std::size_t>>> ran;
  pool.for_chunks({0, 0, 0, 100, 100},
                  [&](int worker, std::size_t lo, std::size_t hi) {
                    if (lo == hi) return;
                    std::lock_guard<std::mutex> lock(mu);
                    ran.push_back({worker, {lo, hi}});
                  });
  ASSERT_EQ(ran.size(), 1u);
  EXPECT_EQ(ran[0].first, 2);
  EXPECT_EQ(ran[0].second.first, 0u);
  EXPECT_EQ(ran[0].second.second, 100u);
}

TEST(ThreadPoolChunks, BoundsShorterThanWorkersThrow) {
  ThreadPool pool(4);
  const auto noop = [](int, std::size_t, std::size_t) {};
  // for_chunks requires num_workers() + 1 bounds; fewer (including none)
  // is a caller bug surfaced as the DC_CHECK logic_error.
  EXPECT_THROW(pool.for_chunks({}, noop), std::logic_error);
  EXPECT_THROW(pool.for_chunks({0, 10}, noop), std::logic_error);
  EXPECT_THROW(pool.for_chunks({0, 5, 10, 15}, noop), std::logic_error);
}

}  // namespace
}  // namespace deltacolor
