// Tests for the SyncRunner message-passing reference implementations:
// the structural double-buffer discipline must deliver the same guarantees
// as the direct per-round loops.
#include <gtest/gtest.h>

#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/message_passing.hpp"
#include "local/sync_runner.hpp"
#include "primitives/mis.hpp"

namespace deltacolor {
namespace {

std::vector<Graph> family() {
  std::vector<Graph> gs;
  gs.push_back(path_graph(30));
  gs.push_back(cycle_graph(31));
  gs.push_back(complete_graph(8));
  gs.push_back(torus_grid(6, 6));
  gs.push_back(random_regular(100, 5, 3));
  gs.push_back(random_graph(80, 0.08, 4));
  return gs;
}

TEST(MessagePassing, MisIsMaximalIndependent) {
  for (const Graph& g : family()) {
    RoundLedger ledger;
    const auto set = mis_message_passing(g, 55, ledger);
    EXPECT_TRUE(is_maximal_independent_set(g, set))
        << "n=" << g.num_nodes();
    EXPECT_GT(ledger.total(), 0);
  }
}

TEST(MessagePassing, MisMatchesDirectImplementationGuarantees) {
  // Not the same set (different schedules), but both maximal independent.
  Graph g = random_regular(128, 4, 9);
  RoundLedger l1, l2;
  const auto direct = mis_luby(g, 7, l1);
  const auto mp = mis_message_passing(g, 7, l2);
  EXPECT_TRUE(is_maximal_independent_set(g, direct));
  EXPECT_TRUE(is_maximal_independent_set(g, mp));
}

TEST(MessagePassing, ColorTrialProper) {
  for (const Graph& g : family()) {
    RoundLedger ledger;
    const auto color = color_trial_message_passing(g, 77, ledger);
    EXPECT_TRUE(is_proper_coloring(g, color, g.max_degree() + 1))
        << "n=" << g.num_nodes();
  }
}

TEST(MessagePassing, RoundsLogarithmicShape) {
  RoundLedger small_ledger, big_ledger;
  mis_message_passing(random_regular(128, 4, 1), 3, small_ledger);
  mis_message_passing(random_regular(8192, 4, 2), 3, big_ledger);
  EXPECT_LE(big_ledger.total(),
            8 * std::max<std::int64_t>(1, small_ledger.total()));
}

TEST(SyncRunnerEngine, NeighborViewSeesPreviousRoundOnly) {
  // Propagate a token along a path: after r rounds it has moved exactly r
  // hops — the signature of strict round synchrony.
  Graph g = path_graph(10);
  struct S {
    int token = 0;
  };
  std::vector<S> init(10);
  init[0].token = 1;
  SyncRunner<S> runner(g, init);
  const int rounds = runner.run(
      3,
      [&](const SyncRunner<S>::View& view) {
        S s = view.self();
        for (const NodeId u : view.neighbors())
          if (view.neighbor(u).token > 0) s.token = 1;
        return s;
      },
      [](const std::vector<S>&) { return false; });
  EXPECT_EQ(rounds, 3);
  for (NodeId v = 0; v < 10; ++v)
    EXPECT_EQ(runner.states()[v].token, v <= 3 ? 1 : 0) << "node " << v;
}

TEST(SyncRunnerEngine, HaltsOnDonePredicate) {
  Graph g = cycle_graph(6);
  struct S {
    int x = 0;
  };
  SyncRunner<S> runner(g, std::vector<S>(6));
  const int rounds = runner.run(
      100,
      [](const SyncRunner<S>::View& view) {
        S s = view.self();
        ++s.x;
        return s;
      },
      [](const std::vector<S>& states) { return states[0].x >= 5; });
  EXPECT_EQ(rounds, 5);
}

}  // namespace
}  // namespace deltacolor
