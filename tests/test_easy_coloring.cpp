// Tests for Algorithm 3's building blocks: the constructive Lemma 7
// even-cycle list colorer and the loophole brute-force completion.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/easy_coloring.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"

namespace deltacolor {
namespace {

bool cycle_coloring_ok(const std::vector<std::vector<Color>>& lists,
                       const std::vector<Color>& out) {
  const std::size_t k = lists.size();
  if (out.size() != k) return false;
  for (std::size_t i = 0; i < k; ++i) {
    if (out[i] == kNoColor) return false;
    if (std::find(lists[i].begin(), lists[i].end(), out[i]) ==
        lists[i].end())
      return false;
    if (out[i] == out[(i + 1) % k]) return false;
  }
  return true;
}

TEST(EvenCycleLists, IdenticalTightListsAlternate) {
  for (const std::size_t k : {4u, 6u, 8u}) {
    std::vector<std::vector<Color>> lists(k, {5, 9});
    std::vector<Color> out;
    ASSERT_TRUE(color_even_cycle_from_lists(lists, out)) << "k=" << k;
    EXPECT_TRUE(cycle_coloring_ok(lists, out));
  }
}

TEST(EvenCycleLists, OddCycleIdenticalTightListsInfeasible) {
  std::vector<std::vector<Color>> lists(5, {1, 2});
  std::vector<Color> out;
  EXPECT_FALSE(color_even_cycle_from_lists(lists, out));
}

TEST(EvenCycleLists, OddCycleWithOneSpareColorFeasible) {
  std::vector<std::vector<Color>> lists(5, {1, 2});
  lists[3] = {1, 2, 3};
  std::vector<Color> out;
  ASSERT_TRUE(color_even_cycle_from_lists(lists, out));
  EXPECT_TRUE(cycle_coloring_ok(lists, out));
}

TEST(EvenCycleLists, DifferingTightLists) {
  std::vector<std::vector<Color>> lists = {{1, 2}, {2, 3}, {3, 4},
                                           {4, 5}, {5, 6}, {6, 1}};
  std::vector<Color> out;
  ASSERT_TRUE(color_even_cycle_from_lists(lists, out));
  EXPECT_TRUE(cycle_coloring_ok(lists, out));
}

TEST(EvenCycleLists, RandomizedSweep) {
  // Random lists of size >= 2 on even cycles always admit a coloring;
  // exhaustively verified by the checker.
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t k = 4 + 2 * rng.below(3);  // 4, 6, 8
    std::vector<std::vector<Color>> lists(k);
    for (auto& list : lists) {
      const int size = 2 + static_cast<int>(rng.below(3));
      while (static_cast<int>(list.size()) < size) {
        const Color c = static_cast<Color>(rng.below(6));
        if (std::find(list.begin(), list.end(), c) == list.end())
          list.push_back(c);
      }
    }
    std::vector<Color> out;
    ASSERT_TRUE(color_even_cycle_from_lists(lists, out)) << "trial " << trial;
    EXPECT_TRUE(cycle_coloring_ok(lists, out)) << "trial " << trial;
  }
}

TEST(EvenCycleLists, RejectsDegenerate) {
  std::vector<Color> out;
  EXPECT_FALSE(color_even_cycle_from_lists({{1, 2}, {1, 2}}, out));  // k<3
  EXPECT_FALSE(color_even_cycle_from_lists({{1}, {1, 2}, {2, 3}, {3, 1}},
                                           out));  // undersized list
}

TEST(ColorLoophole, DegreeLoopholeTakesAnyFreeColor) {
  Graph g = star_graph(4);  // Delta = 4; leaves have degree 1
  std::vector<Color> color(g.num_nodes(), kNoColor);
  color[0] = 2;  // center
  color_loophole(g, Loophole{{1}}, color);
  EXPECT_NE(color[1], kNoColor);
  EXPECT_NE(color[1], 2);
}

TEST(ColorLoophole, FourCycleWithColoredSurroundings) {
  // C4 inside a larger graph whose outside neighbors are pre-colored so
  // each cycle vertex keeps exactly 2 free colors: the tight Lemma 7 case.
  // Build: 4-cycle 0-1-2-3 plus a distinct pendant per cycle vertex.
  Graph g(8, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 4}, {1, 5}, {2, 6},
              {3, 7}});
  // Delta = 3, palette {0,1,2}; pendants colored to shrink lists to 2.
  std::vector<Color> color(8, kNoColor);
  color[4] = 0;
  color[5] = 0;
  color[6] = 0;
  color[7] = 0;
  color_loophole(g, Loophole{{0, 1, 2, 3}}, color);
  EXPECT_TRUE(is_proper_coloring(g, color, 3));
}

TEST(ColorLoophole, ChordedLoopholeFallsBackToSearch) {
  // 4-cycle with one chord (non-clique): 0-1-2-3 + chord 0-2.
  Graph g(6, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {0, 4}, {2, 5}});
  std::vector<Color> color(g.num_nodes(), kNoColor);
  color[4] = 0;
  color[5] = 1;
  Loophole l{{0, 1, 2, 3}};
  ASSERT_TRUE(is_valid_loophole(g, l));
  color_loophole(g, l, color);
  for (const NodeId v : l.vertices) EXPECT_NE(color[v], kNoColor);
  EXPECT_TRUE(check_coloring(g, color).proper);
}

TEST(ColorLoophole, ThrowsOnPreColoredVertex) {
  Graph g = cycle_graph(4);
  std::vector<Color> color(4, kNoColor);
  color[1] = 0;
  EXPECT_THROW(color_loophole(g, Loophole{{0, 1, 2, 3}}, color),
               std::logic_error);
}

}  // namespace
}  // namespace deltacolor
