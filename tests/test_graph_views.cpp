// Lazy GraphView parity tests: every view (InducedSubgraphView,
// PowerGraphView, LineGraphView) must enumerate exactly the adjacency of
// its eager materializer oracle (graph/subgraph.hpp), with matching
// degrees, identifiers, and dilation — and view-generic primitives must
// produce identical results on the view and on the materialized graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_support/workloads.hpp"
#include "graph/generators.hpp"
#include "graph/graph_view.hpp"
#include "graph/subgraph.hpp"
#include "local/context.hpp"
#include "primitives/ruling_set.hpp"

namespace deltacolor {
namespace {

std::vector<Graph> family() {
  std::vector<Graph> gs;
  gs.push_back(cycle_graph(31));
  gs.push_back(random_regular(200, 5, 3));
  gs.push_back(random_graph(150, 0.06, 4));
  gs.push_back(bench::hard_instance(16, 12, 8).graph);
  return gs;
}

template <typename ViewT>
std::vector<NodeId> sorted_view_neighbors(const ViewT& view, NodeId v) {
  std::vector<NodeId> nbrs;
  view.for_each_neighbor(v, [&](NodeId u) { nbrs.push_back(u); });
  std::sort(nbrs.begin(), nbrs.end());
  return nbrs;
}

std::vector<NodeId> sorted_graph_neighbors(const Graph& g, NodeId v) {
  const auto span = g.neighbors(v);
  std::vector<NodeId> nbrs(span.begin(), span.end());
  std::sort(nbrs.begin(), nbrs.end());
  return nbrs;
}

TEST(GraphViews, InducedSubgraphViewMatchesMaterializedOracle) {
  for (const Graph& g : family()) {
    // Every third node, deliberately unsorted and with duplicates.
    std::vector<NodeId> nodes;
    for (NodeId v = 0; v < g.num_nodes(); v += 3) nodes.push_back(v);
    std::reverse(nodes.begin(), nodes.end());
    if (!nodes.empty()) nodes.push_back(nodes.front());

    const Subgraph oracle = induced_subgraph(g, nodes);
    const InducedSubgraphView view(g, nodes);

    ASSERT_EQ(view.num_nodes(), oracle.graph.num_nodes());
    EXPECT_EQ(view.max_degree(), oracle.graph.max_degree());
    EXPECT_EQ(view.dilation(), 1);
    for (NodeId i = 0; i < view.num_nodes(); ++i) {
      EXPECT_EQ(view.orig_of(i), oracle.orig_of[i]);
      EXPECT_EQ(view.id(i), oracle.graph.id(i));
      EXPECT_EQ(view.degree(i), oracle.graph.degree(i));
      EXPECT_EQ(sorted_view_neighbors(view, i),
                sorted_graph_neighbors(oracle.graph, i));
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v)
      EXPECT_EQ(view.sub_of(v), oracle.sub_of[v]);
  }
}

TEST(GraphViews, PowerGraphViewMatchesMaterializedOracle) {
  for (const Graph& g : family()) {
    for (const int r : {1, 2, 3}) {
      const Graph oracle = power_graph(g, r);
      const PowerGraphView view(g, r);

      ASSERT_EQ(view.num_nodes(), oracle.num_nodes());
      EXPECT_EQ(view.max_degree(), oracle.max_degree());
      EXPECT_EQ(view.dilation(), r);
      for (NodeId v = 0; v < view.num_nodes(); ++v) {
        EXPECT_EQ(view.id(v), g.id(v));
        EXPECT_EQ(view.degree(v), oracle.degree(v));
        EXPECT_EQ(sorted_view_neighbors(view, v),
                  sorted_graph_neighbors(oracle, v));
      }
    }
  }
}

TEST(GraphViews, LineGraphViewMatchesMaterializedOracle) {
  for (const Graph& g : family()) {
    const Graph oracle = line_graph(g);
    const LineGraphView view(g);

    ASSERT_EQ(view.num_nodes(), oracle.num_nodes());
    // The view reports the structural bound 2*Delta - 2; the materialized
    // line graph's max degree can only be tighter.
    EXPECT_GE(view.max_degree(), oracle.max_degree());
    EXPECT_EQ(view.dilation(), 2);
    for (NodeId e = 0; e < view.num_nodes(); ++e) {
      EXPECT_EQ(view.id(e), oracle.id(e));
      EXPECT_EQ(view.degree(e), oracle.degree(e));
      EXPECT_EQ(sorted_view_neighbors(view, e),
                sorted_graph_neighbors(oracle, e));
    }
  }
}

// View-generic primitive parity: the bit-peeling ruling set run on the
// lazy power view must select exactly the set it selects on the
// materialized power graph (identifiers and degrees agree, so the Linial
// labels and every peel decision agree).
TEST(GraphViews, RulingSetOnLazyPowerViewMatchesMaterialized) {
  for (const Graph& g : family()) {
    for (const int r : {2, 3}) {
      RoundLedger lazy_ledger;
      LocalContext lazy_ctx(lazy_ledger);
      const RulingSetResult lazy = ruling_set_power(g, r, lazy_ctx);

      RoundLedger mat_ledger;
      LocalContext mat_ctx(mat_ledger);
      const Graph pg = power_graph(g, r);
      const RulingSetResult mat = ruling_set(pg, mat_ctx);

      EXPECT_EQ(lazy.in_set, mat.in_set);
      // Virtual rounds agree; the lazy run charges them dilated by r.
      EXPECT_EQ(lazy_ledger.total(), r * mat_ledger.total());
      EXPECT_EQ(lazy.domination_radius, r * mat.domination_radius);
    }
  }
}

}  // namespace
}  // namespace deltacolor
