// Tests for the almost-clique decomposition (Lemma 2) and loophole
// detection (Definition 6 / Definition 8 support).
#include <gtest/gtest.h>

#include "acd/acd.hpp"
#include "core/loopholes.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "local/ledger.hpp"

namespace deltacolor {
namespace {

CliqueInstance blowup(int cliques, int delta, int s, double easy = 0.0,
                      std::uint64_t seed = 3) {
  CliqueInstanceOptions opt;
  opt.num_cliques = cliques;
  opt.delta = delta;
  opt.clique_size = s;
  opt.easy_fraction = easy;
  opt.seed = seed;
  return clique_blowup_instance(opt);
}

AcdParams params_for(int delta) {
  // epsilon * Delta >= 2 keeps degree-(Delta-1) loophole vertices inside
  // their almost clique (Lemma 2 (ii)); the paper's 1/63 assumes Delta
  // large enough, so moderate-Delta instances scale epsilon up.
  AcdParams p;
  p.epsilon = std::max(kAcdEpsilon, 2.5 / delta);
  return p;
}

// --- ACD ----------------------------------------------------------------------

TEST(Acd, RecoversGroundTruthCliques) {
  const CliqueInstance inst = blowup(24, 16, 16);
  RoundLedger ledger;
  const Acd acd = compute_acd(inst.graph, ledger, params_for(16));
  EXPECT_TRUE(acd.is_dense());
  EXPECT_EQ(acd.num_cliques(), static_cast<int>(inst.cliques.size()));
  // Every ground-truth clique must be one AC.
  for (const auto& clique : inst.cliques) {
    const int c = acd.clique_of[clique.front()];
    ASSERT_NE(c, -1);
    for (const NodeId v : clique) EXPECT_EQ(acd.clique_of[v], c);
  }
  EXPECT_TRUE(validate_acd(inst.graph, acd).empty());
}

TEST(Acd, ValidOnLemma2TermsAtPaperEpsilon) {
  // Delta = 63 is the smallest maximum degree at which exact
  // Delta-cliques satisfy Lemma 2 (ii) with the paper's epsilon = 1/63.
  const CliqueInstance inst = blowup(8, 63, 63);
  RoundLedger ledger;
  AcdParams p;  // defaults: epsilon = 1/63
  const Acd acd = compute_acd(inst.graph, ledger, p);
  EXPECT_TRUE(acd.is_dense());
  const auto violations = validate_acd(inst.graph, acd);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
}

TEST(Acd, EasifiedCliquesStayInDecomposition) {
  const CliqueInstance inst = blowup(20, 16, 16, /*easy=*/0.3);
  RoundLedger ledger;
  const Acd acd = compute_acd(inst.graph, ledger, params_for(16));
  EXPECT_TRUE(acd.is_dense());
  EXPECT_EQ(acd.num_cliques(), static_cast<int>(inst.cliques.size()));
}

TEST(Acd, SparseGraphClassifiedSparse) {
  Graph g = random_regular(128, 6, 9);
  RoundLedger ledger;
  const Acd acd = compute_acd(g, ledger);
  EXPECT_FALSE(acd.is_dense());
  EXPECT_EQ(acd.num_cliques(), 0);
  EXPECT_EQ(acd.sparse.size(), g.num_nodes());
}

TEST(Acd, TreeIsAllSparse) {
  Graph g = random_tree(100, 4);
  RoundLedger ledger;
  const Acd acd = compute_acd(g, ledger);
  EXPECT_FALSE(acd.is_dense());
}

TEST(Acd, EmptyGraph) {
  Graph g(0, {});
  RoundLedger ledger;
  const Acd acd = compute_acd(g, ledger);
  EXPECT_TRUE(acd.is_dense());
  EXPECT_EQ(acd.num_cliques(), 0);
}

TEST(Acd, ChargesConstantRounds) {
  const CliqueInstance small = blowup(12, 12, 12);
  const CliqueInstance large = blowup(48, 12, 12);
  RoundLedger l1, l2;
  compute_acd(small.graph, l1, params_for(12));
  compute_acd(large.graph, l2, params_for(12));
  EXPECT_EQ(l1.total(), l2.total());  // O(1) rounds, independent of n
}

// --- loophole validity checker ---------------------------------------------------

TEST(Loopholes, ValidityChecker) {
  // Path: middle vertex has deg 2 = Delta, ends have deg 1 < Delta.
  Graph p = path_graph(3);
  EXPECT_TRUE(is_valid_loophole(p, Loophole{{0}}));
  EXPECT_FALSE(is_valid_loophole(p, Loophole{{1}}));

  // C4 is a non-clique 4-cycle.
  Graph c4 = cycle_graph(4);
  EXPECT_TRUE(is_valid_loophole(c4, Loophole{{0, 1, 2, 3}}));
  EXPECT_FALSE(is_valid_loophole(c4, Loophole{{0, 2, 1, 3}}));  // non-cycle
  EXPECT_FALSE(is_valid_loophole(c4, Loophole{{0, 1, 2}}));     // odd

  // K4 contains 4-cycles but they induce cliques: not loopholes.
  Graph k4 = complete_graph(4);
  EXPECT_FALSE(is_valid_loophole(k4, Loophole{{0, 1, 2, 3}}));

  // Duplicated vertices rejected.
  EXPECT_FALSE(is_valid_loophole(c4, Loophole{{0, 1, 0, 1}}));
}

// --- brute-force detector ---------------------------------------------------------

TEST(Loopholes, BruteForceOnEvenCycle) {
  Graph g = cycle_graph(6);  // Delta = 2; the whole 6-cycle is a loophole
  const auto set = find_loopholes_bruteforce(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_TRUE(set.vertex_in_loophole(v));
}

TEST(Loopholes, BruteForceOnOddCycle) {
  Graph g = cycle_graph(7);  // odd cycle: no loophole anywhere
  const auto set = find_loopholes_bruteforce(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    EXPECT_FALSE(set.vertex_in_loophole(v));
  EXPECT_TRUE(set.loopholes.empty());
}

TEST(Loopholes, BruteForceOnCompleteGraph) {
  Graph g = complete_graph(6);  // K6: Delta = 5, no loopholes
  const auto set = find_loopholes_bruteforce(g);
  EXPECT_TRUE(set.loopholes.empty());
}

TEST(Loopholes, BruteForceFindsDegreeLoopholes) {
  Graph g = star_graph(5);  // leaves have degree 1 < Delta = 5
  const auto set = find_loopholes_bruteforce(g);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_TRUE(set.vertex_in_loophole(v));
}

TEST(Loopholes, AllDetectedLoopholesAreValid) {
  Graph g = random_graph(40, 0.2, 12);
  const auto set = find_loopholes_bruteforce(g);
  for (const auto& l : set.loopholes) EXPECT_TRUE(is_valid_loophole(g, l));
}

// --- dense detector vs ground truth -----------------------------------------------

TEST(Loopholes, DenseDetectorFindsNothingOnHardInstance) {
  const CliqueInstance inst = blowup(24, 16, 16);
  RoundLedger ledger;
  const Acd acd = compute_acd(inst.graph, ledger, params_for(16));
  const auto set = find_loopholes_dense(inst.graph, acd, ledger);
  EXPECT_TRUE(set.loopholes.empty())
      << "hard instance must have no <=6-vertex loopholes";
}

TEST(Loopholes, DenseDetectorFlagsEasifiedCliques) {
  const CliqueInstance inst = blowup(20, 16, 16, /*easy=*/0.4, 8);
  RoundLedger ledger;
  const Acd acd = compute_acd(inst.graph, ledger, params_for(16));
  const auto set = find_loopholes_dense(inst.graph, acd, ledger);
  for (std::size_t c = 0; c < inst.cliques.size(); ++c) {
    bool has_loophole_vertex = false;
    for (const NodeId v : inst.cliques[c])
      if (set.vertex_in_loophole(v)) has_loophole_vertex = true;
    EXPECT_EQ(has_loophole_vertex, static_cast<bool>(inst.easified[c]))
        << "clique " << c;
  }
  for (const auto& l : set.loopholes)
    EXPECT_TRUE(is_valid_loophole(inst.graph, l));
}

TEST(Loopholes, DenseAgreesWithBruteForceOnSmallInstances) {
  // The dense detector records *witness* loopholes (one per structural
  // cause), so the correct agreement granularity is: (1) every dense-flagged
  // vertex is brute-flagged, and (2) per almost clique, "intersects some
  // loophole" coincides — that is what hard/easy classification consumes.
  for (const double easy : {0.0, 0.25, 0.5}) {
    const CliqueInstance inst = blowup(10, 10, 10, easy, 21);
    RoundLedger ledger;
    const Acd acd = compute_acd(inst.graph, ledger, params_for(10));
    ASSERT_TRUE(acd.is_dense()) << "easy_fraction " << easy;
    const auto dense = find_loopholes_dense(inst.graph, acd, ledger);
    const auto brute = find_loopholes_bruteforce(inst.graph);
    for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
      EXPECT_LE(dense.vertex_in_loophole(v), brute.vertex_in_loophole(v))
          << "vertex " << v << " easy_fraction " << easy;
    for (int c = 0; c < acd.num_cliques(); ++c) {
      bool dense_hit = false, brute_hit = false;
      for (const NodeId v : acd.cliques[static_cast<std::size_t>(c)]) {
        dense_hit |= dense.vertex_in_loophole(v);
        brute_hit |= brute.vertex_in_loophole(v);
      }
      EXPECT_EQ(dense_hit, brute_hit)
          << "AC " << c << " easy_fraction " << easy;
    }
  }
}

TEST(Loopholes, CliqueRingIsEasyEverywhere) {
  const CliqueInstance inst = clique_ring(8, 6);
  RoundLedger ledger;
  const Acd acd = compute_acd(inst.graph, ledger, params_for(6));
  const auto set = find_loopholes_dense(inst.graph, acd, ledger);
  // Each clique has s-2 vertices of degree < Delta: all flagged.
  int flagged = 0;
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
    if (set.vertex_in_loophole(v)) ++flagged;
  EXPECT_GE(flagged, 8 * (6 - 2));
}

}  // namespace
}  // namespace deltacolor
