// Tests for the round-accounting contracts: the edge coloring that backs
// the matching subroutines, and the n-(in)dependence shape of every
// pipeline phase that Lemma 18's decomposition predicts.
#include <gtest/gtest.h>

#include "bench_support/workloads.hpp"
#include "core/delta_coloring.hpp"
#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "primitives/linial.hpp"
#include "randomized/randomized_coloring.hpp"

namespace deltacolor {
namespace {

TEST(EdgeColoring, ProperOnFamilies) {
  std::vector<Graph> gs;
  gs.push_back(path_graph(20));
  gs.push_back(complete_graph(7));
  gs.push_back(torus_grid(5, 5));
  gs.push_back(random_regular(64, 5, 3));
  gs.push_back(bench::hard_instance(12, 10, 4).graph);
  for (const Graph& g : gs) {
    RoundLedger ledger;
    const LinialResult ec = linial_edge_coloring(g, ledger);
    ASSERT_EQ(ec.color.size(), g.num_edges());
    // Properness on the line graph: incident edges differ in color.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto inc = g.incident_edges(v);
      for (std::size_t i = 0; i < inc.size(); ++i)
        for (std::size_t j = i + 1; j < inc.size(); ++j)
          EXPECT_NE(ec.color[inc[i]], ec.color[inc[j]])
              << "edges " << inc[i] << "," << inc[j] << " at " << v;
    }
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_GE(ec.color[e], 0);
      EXPECT_LT(ec.color[e], ec.num_colors);
    }
  }
}

TEST(EdgeColoring, EmptyGraph) {
  Graph g(4, {});
  RoundLedger ledger;
  const LinialResult ec = linial_edge_coloring(g, ledger);
  EXPECT_TRUE(ec.color.empty());
}

TEST(RoundAccounting, OnlyHegPhaseDependsOnN) {
  // Lemma 18: T_MM, T_SP, T_deg+1 are n-independent at fixed Delta (up to
  // the log* term, invisible at these sizes); T_HEG carries the log n.
  const auto small = bench::hard_instance(32, 16, 7);
  const auto large = bench::hard_instance(512, 16, 7);
  const auto rs = delta_color_dense(small.graph, scaled_options(16));
  const auto rl = delta_color_dense(large.graph, scaled_options(16));
  ASSERT_TRUE(rs.valid && rl.valid);
  for (const char* phase :
       {"acd", "loopholes", "phase2-split", "phase3-triads"}) {
    EXPECT_EQ(rs.ledger.phase_total(phase), rl.ledger.phase_total(phase))
        << phase;
  }
  // Matching and list-coloring phases may shift by a few rounds (log*
  // term, schedule size); bound the drift.
  for (const char* phase :
       {"phase1-matching", "phase4a-pairs", "phase4b-rest"}) {
    const auto a = rs.ledger.phase_total(phase);
    const auto b = rl.ledger.phase_total(phase);
    EXPECT_LE(std::abs(a - b), a / 2 + 32) << phase;
  }
}

TEST(RoundAccounting, LedgerTotalsMatchPhaseSums) {
  const auto inst = bench::mixed_instance(24, 16, 0.2, 9);
  const auto res = delta_color_dense(inst.graph, scaled_options(16));
  ASSERT_TRUE(res.valid);
  std::int64_t sum = 0;
  for (const auto& [phase, rounds] : res.ledger.phases()) sum += rounds;
  EXPECT_EQ(sum, res.ledger.total());
  EXPECT_GT(res.ledger.phase_total("acd"), 0);
}

TEST(RoundAccounting, RandomizedAdversarialIds) {
  CliqueInstance inst = bench::hard_instance(24, 16, 5);
  std::vector<std::uint64_t> ids(inst.graph.num_nodes());
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
    ids[v] = inst.graph.num_nodes() - 1 - v;
  inst.graph.set_ids(ids);
  const auto res =
      randomized_delta_color(inst.graph, scaled_randomized_options(16, 3));
  EXPECT_TRUE(res.valid);
}

TEST(RoundAccounting, DeterministicIsSeedInvariantGivenIds) {
  // The deterministic pipeline must produce identical colorings across
  // runs (its only "seed" feeds the splitter's simulated chopping).
  const auto inst = bench::hard_instance(16, 12, 6);
  const auto r1 = delta_color_dense(inst.graph, scaled_options(12));
  const auto r2 = delta_color_dense(inst.graph, scaled_options(12));
  EXPECT_EQ(r1.color, r2.color);
  EXPECT_EQ(r1.ledger.total(), r2.ledger.total());
}

}  // namespace
}  // namespace deltacolor
