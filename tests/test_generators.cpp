// Tests for graph generators, in particular the dense clique blow-up
// instances that realize the paper's workloads.
#include <gtest/gtest.h>

#include "graph/checker.hpp"
#include "graph/generators.hpp"

namespace deltacolor {
namespace {

TEST(Elementary, PathCycleComplete) {
  EXPECT_EQ(path_graph(5).num_edges(), 4u);
  EXPECT_EQ(cycle_graph(5).num_edges(), 5u);
  EXPECT_EQ(complete_graph(5).num_edges(), 10u);
  EXPECT_EQ(complete_bipartite(3, 4).num_edges(), 12u);
  EXPECT_EQ(star_graph(6).max_degree(), 6);
}

TEST(Elementary, TorusIsFourRegular) {
  Graph g = torus_grid(4, 5);
  EXPECT_EQ(g.num_nodes(), 20u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(g.num_components(), 1u);
}

TEST(Elementary, RandomTreeIsTree) {
  Graph g = random_tree(50, 3);
  EXPECT_EQ(g.num_edges(), 49u);
  EXPECT_EQ(g.num_components(), 1u);
}

TEST(Elementary, RandomRegularIsRegular) {
  for (const int d : {3, 5, 8}) {
    Graph g = random_regular(64, d, 1234 + d);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), d);
  }
}

TEST(NumberTheory, NextPrime) {
  EXPECT_EQ(next_prime(2), 2);
  EXPECT_EQ(next_prime(14), 17);
  EXPECT_EQ(next_prime(100), 101);
}

TEST(NumberTheory, SidonSetDifferencesDistinct) {
  for (const int k : {3, 10, 30}) {
    const auto a = sidon_set(k);
    ASSERT_EQ(static_cast<int>(a.size()), k);
    std::vector<int> diffs;
    for (int i = 0; i < k; ++i)
      for (int j = 0; j < k; ++j)
        if (i != j) diffs.push_back(a[i] - a[j]);
    std::sort(diffs.begin(), diffs.end());
    EXPECT_EQ(std::adjacent_find(diffs.begin(), diffs.end()), diffs.end());
  }
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth_at_most(cycle_graph(5), 10), 5);
  EXPECT_EQ(girth_at_most(complete_graph(4), 10), 3);
  EXPECT_EQ(girth_at_most(path_graph(6), 10), 11);  // acyclic: cap + 1
  EXPECT_EQ(girth_at_most(complete_bipartite(3, 3), 10), 4);
  EXPECT_EQ(girth_at_most(torus_grid(5, 5), 10), 4);
}

class BlowupTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlowupTest, StructuralGuarantees) {
  const auto [delta, clique_size] = GetParam();
  CliqueInstanceOptions opt;
  opt.num_cliques = 24;
  opt.delta = delta;
  opt.clique_size = clique_size;
  opt.seed = 99;
  const CliqueInstance inst = clique_blowup_instance(opt);
  const Graph& g = inst.graph;

  // Every vertex has degree exactly delta.
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(g.degree(v), delta);

  // Ground-truth clusters are cliques of the requested size.
  for (const auto& clique : inst.cliques) {
    EXPECT_EQ(static_cast<int>(clique.size()), clique_size);
    EXPECT_TRUE(is_clique(g, clique));
  }

  // Lemma 9 part 3 analogue: no vertex has two neighbors inside a foreign
  // clique (this is what makes every clique hard).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::vector<int> hits(inst.cliques.size(), 0);
    for (const NodeId u : g.neighbors(v)) {
      const int c = inst.clique_of[u];
      if (c != inst.clique_of[v]) {
        ++hits[c];
        EXPECT_LE(hits[c], 1) << "vertex " << v << " has two neighbors in "
                              << "clique " << c;
      }
    }
  }

  // No Delta+1 clique can exist (cliques are maximal cliques of size s).
  // Check via the cross-edge structure: each vertex has exactly
  // delta - clique_size + 1 cross neighbors.
  const int e = delta - clique_size + 1;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    int cross = 0;
    for (const NodeId u : g.neighbors(v))
      if (inst.clique_of[u] != inst.clique_of[v]) ++cross;
    EXPECT_EQ(cross, e);
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaAndSize, BlowupTest,
                         ::testing::Values(std::tuple{8, 8},
                                           std::tuple{12, 12},
                                           std::tuple{16, 16},
                                           std::tuple{8, 7},
                                           std::tuple{10, 8}));

TEST(Blowup, NoShortNonCliqueEvenCycles) {
  // The generator's central guarantee: no loophole-sized (<= 6 vertex)
  // non-clique even cycle exists. We verify the two ingredients directly:
  // cross-subgraph girth > 6 and no vertex with two neighbors in a foreign
  // clique (tested above); and additionally brute-force 4-cycles on a small
  // instance: every 4-cycle must be fully inside one clique.
  CliqueInstanceOptions opt;
  opt.num_cliques = 16;
  opt.delta = 8;
  opt.clique_size = 7;  // e = 2: the interesting case
  opt.seed = 5;
  const CliqueInstance inst = clique_blowup_instance(opt);
  const Graph& g = inst.graph;

  // Brute-force all 4-cycles v0-v1-v2-v3.
  for (NodeId v0 = 0; v0 < g.num_nodes(); ++v0) {
    for (const NodeId v1 : g.neighbors(v0)) {
      for (const NodeId v2 : g.neighbors(v1)) {
        if (v2 == v0) continue;
        for (const NodeId v3 : g.neighbors(v2)) {
          if (v3 == v1 || v3 == v0) continue;
          if (!g.has_edge(v3, v0)) continue;
          // 4-cycle found; must lie inside a single clique.
          EXPECT_EQ(inst.clique_of[v0], inst.clique_of[v1]);
          EXPECT_EQ(inst.clique_of[v0], inst.clique_of[v2]);
          EXPECT_EQ(inst.clique_of[v0], inst.clique_of[v3]);
        }
      }
    }
  }
}

TEST(Blowup, EasyFractionRemovesEdges) {
  CliqueInstanceOptions opt;
  opt.num_cliques = 20;
  opt.delta = 10;
  opt.clique_size = 10;
  opt.easy_fraction = 0.5;
  opt.seed = 17;
  const CliqueInstance inst = clique_blowup_instance(opt);
  int easified = 0;
  for (std::size_t c = 0; c < inst.cliques.size(); ++c) {
    int deficient = 0;
    for (const NodeId v : inst.cliques[c])
      if (inst.graph.degree(v) < opt.delta) ++deficient;
    if (inst.easified[c]) {
      ++easified;
      EXPECT_EQ(deficient, 2);  // both endpoints of the removed edge
      EXPECT_FALSE(is_clique(inst.graph, inst.cliques[c]));
    } else {
      EXPECT_EQ(deficient, 0);
      EXPECT_TRUE(is_clique(inst.graph, inst.cliques[c]));
    }
  }
  EXPECT_EQ(easified, static_cast<int>(0.5 * inst.cliques.size()));
}

TEST(Blowup, IdsShuffledByDefault) {
  CliqueInstanceOptions opt;
  opt.num_cliques = 8;
  opt.delta = 8;
  opt.clique_size = 8;
  const CliqueInstance inst = clique_blowup_instance(opt);
  bool any_moved = false;
  for (NodeId v = 0; v < inst.graph.num_nodes(); ++v)
    if (inst.graph.id(v) != v) any_moved = true;
  EXPECT_TRUE(any_moved);
}

TEST(CliqueRing, EveryCliqueEasyAndDeltaIsCliqueSize) {
  const CliqueInstance inst = clique_ring(6, 5, 3);
  const Graph& g = inst.graph;
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_EQ(inst.delta, 5);
  EXPECT_EQ(g.num_components(), 1u);
  for (const auto& clique : inst.cliques) EXPECT_TRUE(is_clique(g, clique));
  // Each clique has exactly two vertices of full degree Delta.
  for (const auto& clique : inst.cliques) {
    int full = 0;
    for (const NodeId v : clique)
      if (g.degree(v) == 5) ++full;
    EXPECT_EQ(full, 2);
  }
}

TEST(CliqueRing, RejectsDegenerateParameters) {
  EXPECT_THROW(clique_ring(2, 5), std::logic_error);
  EXPECT_THROW(clique_ring(5, 2), std::logic_error);
}

}  // namespace
}  // namespace deltacolor
