// Unit tests for the Graph data structure, derived graphs, and checkers.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "graph/checker.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/subgraph.hpp"

namespace deltacolor {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0);
  EXPECT_EQ(g.num_components(), 0u);
}

TEST(Graph, IsolatedNodes) {
  Graph g(5, {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_EQ(g.num_components(), 5u);
}

TEST(Graph, TriangleBasics) {
  Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
  const EdgeId e = g.edge_between(1, 2);
  ASSERT_NE(e, kNoEdge);
  EXPECT_EQ(g.endpoints(e), (std::pair<NodeId, NodeId>{1, 2}));
  EXPECT_EQ(g.other_endpoint(e, 1), 2u);
  EXPECT_EQ(g.other_endpoint(e, 2), 1u);
}

TEST(Graph, DeduplicatesAndNormalizesEdges) {
  Graph g(3, {{1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::logic_error);
}

TEST(Graph, OutOfRangeRejected) {
  EXPECT_THROW(Graph(2, {{0, 5}}), std::logic_error);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5, {{3, 0}, {3, 4}, {3, 1}, {3, 2}});
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, IncidentEdgesAlignWithNeighbors) {
  Graph g = complete_graph(6);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    ASSERT_EQ(nbrs.size(), inc.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i)
      EXPECT_EQ(g.other_endpoint(inc[i], v), nbrs[i]);
  }
}

TEST(Graph, IdsDefaultIdentityAndSettable) {
  Graph g = cycle_graph(4);
  EXPECT_EQ(g.id(2), 2u);
  g.set_ids({7, 3, 9, 11});
  EXPECT_EQ(g.id(0), 7u);
  EXPECT_THROW(g.set_ids({1, 1, 2, 3}), std::logic_error);  // duplicates
  EXPECT_THROW(g.set_ids({1, 2, 3}), std::logic_error);     // wrong size
}

TEST(Graph, ShuffledIdsArePermutation) {
  auto ids = shuffled_ids(100, 42);
  std::sort(ids.begin(), ids.end());
  for (NodeId i = 0; i < 100; ++i) EXPECT_EQ(ids[i], i);
}

TEST(Graph, WithinDistance) {
  Graph g = path_graph(10);
  EXPECT_TRUE(g.within_distance(0, 3, 3));
  EXPECT_FALSE(g.within_distance(0, 4, 3));
  EXPECT_TRUE(g.within_distance(5, 5, 0));
}

TEST(Graph, Components) {
  Graph g(6, {{0, 1}, {2, 3}, {3, 4}});
  EXPECT_EQ(g.num_components(), 3u);
}

// --- subgraph / derived graphs ----------------------------------------------

TEST(Subgraph, InducedSubgraphKeepsEdgesAndIds) {
  Graph g = complete_graph(6);
  g.set_ids({10, 20, 30, 40, 50, 60});
  const Subgraph s = induced_subgraph(g, {1, 3, 5});
  EXPECT_EQ(s.graph.num_nodes(), 3u);
  EXPECT_EQ(s.graph.num_edges(), 3u);  // induced triangle
  EXPECT_EQ(s.sub_of[1], 0u);
  EXPECT_EQ(s.orig_of[2], 5u);
  EXPECT_EQ(s.sub_of[0], kNoNode);
  EXPECT_EQ(s.graph.id(0), 20u);
}

TEST(Subgraph, InducedSubgraphOfPathDropsOutsideEdges) {
  Graph g = path_graph(5);
  const Subgraph s = induced_subgraph(g, {0, 2, 4});
  EXPECT_EQ(s.graph.num_edges(), 0u);
}

TEST(Subgraph, PowerGraphOfPath) {
  Graph g = path_graph(5);
  Graph p2 = power_graph(g, 2);
  EXPECT_TRUE(p2.has_edge(0, 2));
  EXPECT_FALSE(p2.has_edge(0, 3));
  EXPECT_EQ(p2.num_edges(), 4u + 3u);
}

TEST(Subgraph, LineGraphOfTriangleIsTriangle) {
  Graph lg = line_graph(complete_graph(3));
  EXPECT_EQ(lg.num_nodes(), 3u);
  EXPECT_EQ(lg.num_edges(), 3u);
}

TEST(Subgraph, LineGraphOfStar) {
  Graph lg = line_graph(star_graph(4));
  EXPECT_EQ(lg.num_nodes(), 4u);
  EXPECT_EQ(lg.num_edges(), 6u);  // K4: all edges share the center
}

TEST(Subgraph, ConnectedComponentsLists) {
  Graph g(5, {{0, 1}, {3, 4}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3);
  const auto lists = component_node_lists(c);
  ASSERT_EQ(lists.size(), 3u);
  std::size_t total = 0;
  for (const auto& l : lists) total += l.size();
  EXPECT_EQ(total, 5u);
}

// --- checker ------------------------------------------------------------------

TEST(Checker, ProperColoring) {
  Graph g = cycle_graph(4);
  EXPECT_TRUE(is_proper_coloring(g, {0, 1, 0, 1}, 2));
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, 0}, 2));   // conflict
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, 2}, 2));   // palette overflow
  EXPECT_FALSE(is_proper_coloring(g, {0, 1, 0, kNoColor}, 2));  // incomplete
}

TEST(Checker, DeltaColoring) {
  Graph g = cycle_graph(6);  // Delta = 2, even cycle: 2-colorable
  EXPECT_TRUE(is_delta_coloring(g, {0, 1, 0, 1, 0, 1}));
  Graph k4 = complete_graph(4);  // Delta = 3; K4 is not 3-colorable
  EXPECT_FALSE(is_delta_coloring(k4, {0, 1, 2, 0}));
}

TEST(Checker, ColoringReportCounts) {
  Graph g = path_graph(4);
  const auto r = check_coloring(g, {0, 0, kNoColor, 1});
  EXPECT_FALSE(r.proper);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.conflicts, 1u);
  EXPECT_EQ(r.uncolored, 1u);
  EXPECT_EQ(r.colors_used, 2);
}

TEST(Checker, Matching) {
  Graph g = path_graph(4);  // edges 0-1, 1-2, 2-3
  const EdgeId e01 = g.edge_between(0, 1);
  const EdgeId e12 = g.edge_between(1, 2);
  const EdgeId e23 = g.edge_between(2, 3);
  std::vector<bool> m(g.num_edges(), false);
  m[e01] = true;
  EXPECT_TRUE(is_matching(g, m));
  EXPECT_FALSE(is_maximal_matching(g, m));  // 2-3 is addable
  m[e23] = true;
  EXPECT_TRUE(is_maximal_matching(g, m));
  m[e12] = true;
  EXPECT_FALSE(is_matching(g, m));
}

TEST(Checker, IndependentSetAndMis) {
  Graph g = cycle_graph(5);
  std::vector<bool> s(5, false);
  s[0] = s[2] = true;
  EXPECT_TRUE(is_independent_set(g, s));
  EXPECT_TRUE(is_maximal_independent_set(g, s));
  s[1] = true;
  EXPECT_FALSE(is_independent_set(g, s));
}

TEST(Checker, RulingSet) {
  Graph g = path_graph(9);
  std::vector<bool> s(9, false);
  s[0] = s[4] = s[8] = true;
  EXPECT_TRUE(is_ruling_set(g, s, 2, 2));
  EXPECT_TRUE(pairwise_distance_greater(g, s, 3));
  EXPECT_FALSE(pairwise_distance_greater(g, s, 4));
  EXPECT_TRUE(dominates_within(g, s, 2));
  EXPECT_FALSE(dominates_within(g, s, 1));
}

TEST(Checker, CliqueCheck) {
  Graph g = complete_graph(5);
  EXPECT_TRUE(is_clique(g, {0, 2, 4}));
  Graph h = cycle_graph(5);
  EXPECT_FALSE(is_clique(h, {0, 1, 2}));
}

TEST(Checker, RespectsLists) {
  Graph g = path_graph(3);
  std::vector<std::vector<Color>> lists = {{0, 1}, {1}, {0}};
  EXPECT_TRUE(respects_lists(g, {0, 1, 0}, lists));
  EXPECT_FALSE(respects_lists(g, {1, 1, 0}, lists));  // conflict 0-1? no: list
}

// --- io -----------------------------------------------------------------------

TEST(Io, RoundTrip) {
  Graph g = random_graph(30, 0.2, 7);
  std::stringstream ss;
  write_edge_list(ss, g);
  Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), g.num_nodes());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  const auto he = h.edges();
  const auto ge = g.edges();
  EXPECT_TRUE(std::equal(he.begin(), he.end(), ge.begin(), ge.end()));
}

TEST(Io, DotContainsEdges) {
  Graph g = path_graph(3);
  std::stringstream ss;
  std::vector<Color> colors = {0, 1, 0};
  write_dot(ss, g, &colors);
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("c1"), std::string::npos);
}

}  // namespace
}  // namespace deltacolor
