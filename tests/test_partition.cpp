// Unit tests for the degree-balanced vertex partitioner and the shard
// manifest that the multi-process execution backend runs on: contiguity
// and coverage of the bounds, boundary/ghost/subscriber consistency
// against the graph's actual cut edges, and ownership lookup.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "bench_support/workloads.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"

namespace deltacolor {
namespace {

Graph path_graph(NodeId n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1});
  return Graph(n, std::move(edges));
}

TEST(DegreeBalancedBounds, CoversRangeContiguously) {
  const Graph g = random_regular(1000, 8, 3);
  for (int parts : {1, 2, 3, 7, 16}) {
    const auto bounds = degree_balanced_bounds(g, parts);
    ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), g.num_nodes());
    for (int p = 0; p < parts; ++p) EXPECT_LE(bounds[p], bounds[p + 1]);
  }
}

TEST(DegreeBalancedBounds, BalancesByDegreeWeight) {
  // A star center carries almost all the weight; with 2 parts the split
  // must isolate it rather than halving the index range.
  const NodeId n = 1001;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < n; ++v) edges.push_back({0, v});
  const Graph g = Graph(n, std::move(edges));
  const auto bounds = degree_balanced_bounds(g, 2);
  // Center weight = deg + 1 = n, leaves weight 2; total ~ 3n. The first
  // part hits its half-total target after the center plus ~n/4 leaves —
  // far left of the n/2 midpoint an unweighted split would pick.
  EXPECT_GT(bounds[1], 0u);
  EXPECT_LT(bounds[1], n / 3);
}

TEST(DegreeBalancedBounds, AlignmentRoundsBoundaries) {
  const Graph g = random_regular(1000, 8, 3);
  const auto bounds = degree_balanced_bounds(g, 4, /*align=*/64);
  for (std::size_t p = 1; p + 1 < bounds.size(); ++p)
    EXPECT_EQ(bounds[p] % 64, 0u) << "part " << p;
  EXPECT_EQ(bounds.back(), g.num_nodes());
}

TEST(DegreeBalancedBounds, MorePartsThanNodes) {
  const Graph g = path_graph(3);
  const auto bounds = degree_balanced_bounds(g, 8);
  ASSERT_EQ(bounds.size(), 9u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 3u);
  for (std::size_t p = 0; p + 1 < bounds.size(); ++p)
    EXPECT_LE(bounds[p], bounds[p + 1]);
}

TEST(ShardManifest, OwnerMatchesBounds) {
  const Graph g = random_regular(500, 6, 1);
  const ShardManifest mf = ShardManifest::build(g, 4);
  ASSERT_EQ(mf.num_shards(), 4);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const int s = mf.owner(v);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_GE(v, mf.bounds[s]);
    EXPECT_LT(v, mf.bounds[s + 1]);
  }
}

TEST(ShardManifest, BoundaryAndGhostsMatchCutEdges) {
  const Graph g = bench::hard_instance(16, 10, 5).graph;
  for (int shards : {1, 2, 4}) {
    const ShardManifest mf = ShardManifest::build(g, shards);
    std::uint64_t incident = 0;
    for (int s = 0; s < shards; ++s) {
      // Recompute this shard's cut structure from scratch.
      std::set<NodeId> boundary, ghosts;
      std::uint64_t cut = 0;
      for (NodeId v = mf.bounds[s]; v < mf.bounds[s + 1]; ++v) {
        for (const NodeId u : g.neighbors(v)) {
          if (u >= mf.bounds[s] && u < mf.bounds[s + 1]) continue;
          boundary.insert(v);
          ghosts.insert(u);
          ++cut;
        }
      }
      EXPECT_EQ(std::vector<NodeId>(boundary.begin(), boundary.end()),
                mf.boundary[s])
          << "shard " << s << " of " << shards;
      EXPECT_EQ(std::vector<NodeId>(ghosts.begin(), ghosts.end()),
                mf.ghosts[s])
          << "shard " << s << " of " << shards;
      EXPECT_EQ(mf.boundary_edges[s], cut);
      incident += cut;
      // Subscriber CSR is aligned with the boundary list and names only
      // other shards.
      ASSERT_EQ(mf.sub_offsets[s].size(), mf.boundary[s].size() + 1);
      for (std::size_t i = 0; i < mf.boundary[s].size(); ++i) {
        ASSERT_LE(mf.sub_offsets[s][i], mf.sub_offsets[s][i + 1]);
        for (std::uint32_t j = mf.sub_offsets[s][i];
             j < mf.sub_offsets[s][i + 1]; ++j) {
          const int t = static_cast<int>(mf.sub_targets[s][j]);
          EXPECT_NE(t, s);
          // The subscriber must actually ghost this boundary node.
          EXPECT_TRUE(std::binary_search(mf.ghosts[t].begin(),
                                         mf.ghosts[t].end(),
                                         mf.boundary[s][i]));
        }
      }
    }
    EXPECT_EQ(mf.cut_edges, incident / 2);
  }
}

TEST(ShardManifest, SingleShardHasNoCut) {
  const Graph g = random_regular(200, 4, 9);
  const ShardManifest mf = ShardManifest::build(g, 1);
  EXPECT_EQ(mf.num_shards(), 1);
  EXPECT_TRUE(mf.boundary[0].empty());
  EXPECT_TRUE(mf.ghosts[0].empty());
  EXPECT_EQ(mf.cut_edges, 0u);
}

TEST(ShardManifest, InteriorRunsAndBoundaryTileEachShardExactly) {
  // The boundary-first schedule steps boundary[s] then sweeps
  // interior_runs[s]; together they must cover every owned node exactly
  // once, the runs must be ascending, disjoint, maximal, and contain no
  // boundary node.
  const Graph g = bench::hard_instance(16, 10, 5).graph;
  for (int shards : {1, 2, 3, 4}) {
    const ShardManifest mf = ShardManifest::build(g, shards);
    ASSERT_EQ(mf.interior_runs.size(), static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      std::vector<NodeId> covered(mf.boundary[s]);
      NodeId prev_end = static_cast<NodeId>(mf.bounds[s]);
      for (const NodeRun& run : mf.interior_runs[s]) {
        ASSERT_LT(run.begin, run.end) << "empty run, shard " << s;
        ASSERT_GE(run.begin, prev_end) << "overlapping runs, shard " << s;
        EXPECT_GE(run.begin, mf.bounds[s]);
        EXPECT_LE(run.end, mf.bounds[s + 1]);
        for (NodeId v = run.begin; v < run.end; ++v) {
          covered.push_back(v);
          EXPECT_FALSE(std::binary_search(mf.boundary[s].begin(),
                                          mf.boundary[s].end(), v))
              << "boundary node " << v << " inside an interior run";
        }
        prev_end = run.end;
      }
      // Maximality: adjacent runs would have been merged.
      for (std::size_t i = 0; i + 1 < mf.interior_runs[s].size(); ++i)
        EXPECT_LT(mf.interior_runs[s][i].end,
                  mf.interior_runs[s][i + 1].begin);
      std::sort(covered.begin(), covered.end());
      ASSERT_EQ(covered.size(), mf.shard_size(s)) << "shard " << s;
      for (std::size_t i = 0; i < covered.size(); ++i)
        ASSERT_EQ(covered[i], static_cast<NodeId>(mf.bounds[s] + i));
    }
  }
}

TEST(EffectiveShardCount, ClampsToNonEmptyShards) {
  // More shards than nodes must clamp so no worker owns an empty range.
  const Graph tiny = path_graph(3);
  EXPECT_EQ(effective_shard_count(tiny, 8), 3);
  EXPECT_EQ(effective_shard_count(tiny, 3), 3);
  EXPECT_EQ(effective_shard_count(tiny, 2), 2);
  EXPECT_EQ(effective_shard_count(tiny, 1), 1);
  // An empty graph still gets one (vacuous) shard.
  const Graph empty(0, std::vector<std::pair<NodeId, NodeId>>{});
  EXPECT_EQ(effective_shard_count(empty, 4), 1);
  // A star's weight concentrates on the center: degree-balanced bounds can
  // leave high shard counts with empty trailing parts, and the clamp must
  // land on a count whose every shard is non-empty.
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 1; v < 20; ++v) edges.push_back({0, v});
  const Graph star(20, std::move(edges));
  for (int requested : {1, 2, 4, 8, 32}) {
    const int k = effective_shard_count(star, requested);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, requested);
    const auto bounds = degree_balanced_bounds(star, k);
    for (int p = 0; p < k; ++p)
      EXPECT_LT(bounds[p], bounds[p + 1])
          << "empty shard " << p << " at requested=" << requested;
  }
}

TEST(ShardManifest, EverySubscriberEdgeIsDelivered) {
  // For every shard t and every ghost u it reads, the owner of u must list
  // t as a subscriber of u — otherwise a halo update would be dropped.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  const ShardManifest mf = ShardManifest::build(g, 3);
  for (int t = 0; t < mf.num_shards(); ++t) {
    for (const NodeId u : mf.ghosts[t]) {
      const int s = mf.owner(u);
      const auto it = std::lower_bound(mf.boundary[s].begin(),
                                       mf.boundary[s].end(), u);
      ASSERT_TRUE(it != mf.boundary[s].end() && *it == u);
      const std::size_t i =
          static_cast<std::size_t>(it - mf.boundary[s].begin());
      bool subscribed = false;
      for (std::uint32_t j = mf.sub_offsets[s][i];
           j < mf.sub_offsets[s][i + 1]; ++j)
        subscribed |= static_cast<int>(mf.sub_targets[s][j]) == t;
      EXPECT_TRUE(subscribed) << "ghost " << u << " shard " << t;
    }
  }
}

}  // namespace
}  // namespace deltacolor
