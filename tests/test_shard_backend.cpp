// The multi-process execution backend's fidelity contract, end to end:
//  (a) transport framing round-trips and reports peer death as clean EOF;
//  (b) every registry algorithm is bit-identical between the in-process
//      engine and the proc backend at 1, 2, and 4 shards (colors, sets,
//      round totals, palette) — the golden-parity gate of the backend;
//  (c) stages the backend cannot shard (nested subgraphs, non-POD state)
//      fall back in-process and are counted, never wrong;
//  (d) a worker killed mid-stage surfaces as a structured worker-death
//      CellError, which the sweep driver's quarantine turns into a
//      partial-result table instead of a torn-down batch.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bench_support/sweep.hpp"
#include "bench_support/workloads.hpp"
#include "common/errors.hpp"
#include "graph/generators.hpp"
#include "local/backend.hpp"
#include "local/faults.hpp"
#include "local/transport.hpp"
#include "registry/registry.hpp"

namespace deltacolor {
namespace {

/// Arms `plan` for the scope of one test and disarms on exit.
class ArmedScope {
 public:
  explicit ArmedScope(std::vector<FaultSpec> plan, std::uint64_t seed = 1) {
    FaultInjector::global().arm(std::move(plan), seed);
  }
  ~ArmedScope() { FaultInjector::global().disarm(); }
};

FaultSpec spec_of(std::string_view text) {
  FaultSpec spec;
  EXPECT_TRUE(parse_fault_spec(text, &spec)) << text;
  return spec;
}

// --- transport ---------------------------------------------------------------

TEST(Transport, FramesRoundTrip) {
  auto [coord, worker] = FrameChannel::open_pair();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  coord.send(FrameType::kStep, payload);
  Frame f;
  ASSERT_TRUE(worker.recv(&f));
  EXPECT_EQ(f.type, FrameType::kStep);
  EXPECT_EQ(f.payload, payload);

  worker.send(FrameType::kBarrier, nullptr, 0);
  ASSERT_TRUE(coord.recv(&f));
  EXPECT_EQ(f.type, FrameType::kBarrier);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Transport, PeerCloseIsCleanEofThenSendThrows) {
  auto [coord, worker] = FrameChannel::open_pair();
  worker.close();
  Frame f;
  EXPECT_FALSE(coord.recv(&f));  // orderly EOF, not an exception
  // Writing into the closed peer must surface as TransportError (EPIPE is
  // suppressed as a signal), not kill the process.
  const std::vector<std::uint8_t> payload(1 << 16, 0xab);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) coord.send(FrameType::kStep, payload);
      },
      TransportError);
}

TEST(Transport, BackToBackFramesKeepBoundaries) {
  auto [coord, worker] = FrameChannel::open_pair();
  for (std::uint8_t i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> payload(i * 7, i);
    coord.send(FrameType::kBarrier, payload);
  }
  Frame f;
  for (std::uint8_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(worker.recv(&f));
    ASSERT_EQ(f.payload.size(), static_cast<std::size_t>(i) * 7);
    for (const std::uint8_t b : f.payload) EXPECT_EQ(b, i);
  }
}

// --- golden parity -----------------------------------------------------------

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

std::uint64_t result_hash(const AlgorithmResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Color c : r.color) h = fnv(h, static_cast<std::uint64_t>(c) + 1);
  for (const bool b : r.in_set) h = fnv(h, b ? 2 : 1);
  h = fnv(h, static_cast<std::uint64_t>(r.ledger.total()));
  h = fnv(h, static_cast<std::uint64_t>(r.palette));
  return h;
}

TEST(ShardBackend, EveryRegistryAlgorithmBitIdenticalAcrossShardCounts) {
  const Graph g = bench::hard_instance(16, 10, 5).graph;
  std::uint64_t sharded_stages = 0;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    AlgorithmRequest req;
    req.seed = 7;
    req.engine = {1, false};
    const AlgorithmResult baseline = bench::run_registered(entry.name, g, req);
    EXPECT_TRUE(baseline.ok) << entry.name;
    for (const int shards : {1, 2, 4}) {
      ProcShardedBackend backend(shards);
      backend.prepare(g);
      AlgorithmRequest proc_req = req;
      proc_req.engine.backend = &backend;
      const AlgorithmResult res =
          bench::run_registered(entry.name, g, proc_req);
      EXPECT_TRUE(res.ok) << entry.name << " shards=" << shards;
      EXPECT_EQ(res.color, baseline.color)
          << entry.name << " shards=" << shards;
      EXPECT_EQ(res.in_set, baseline.in_set)
          << entry.name << " shards=" << shards;
      EXPECT_EQ(res.ledger.total(), baseline.ledger.total())
          << entry.name << " shards=" << shards;
      EXPECT_EQ(res.palette, baseline.palette)
          << entry.name << " shards=" << shards;
      EXPECT_EQ(result_hash(res), result_hash(baseline))
          << entry.name << " shards=" << shards;
      sharded_stages += backend.totals().stages;
    }
  }
  // The parity above would hold vacuously if nothing ever sharded; pin
  // that the backend actually executed forked stages.
  EXPECT_GT(sharded_stages, 0u);
}

TEST(ShardBackend, HaloTrafficIsAccounted) {
  // The message-passing trial coloring keeps every node active until its
  // commit round, so a 2-shard split of a connected instance must exchange
  // boundary records.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  const AlgorithmResult res = bench::run_registered("trial", g, req);
  EXPECT_TRUE(res.ok);
  const ProcShardedBackend::Totals totals = backend.totals();
  EXPECT_GT(totals.stages, 0u);
  EXPECT_GT(totals.rounds, 0u);
  ASSERT_EQ(totals.ghost_bytes_in.size(), 2u);
  EXPECT_GT(totals.ghost_bytes_in[0] + totals.ghost_bytes_in[1], 0u);
  EXPECT_GT(totals.boundary_bytes_out[0] + totals.boundary_bytes_out[1], 0u);
  const std::string report = backend.report();
  EXPECT_NE(report.find("SHARDS shard=0"), std::string::npos) << report;
  EXPECT_NE(report.find("SHARDS total"), std::string::npos) << report;
}

TEST(ShardBackend, UnpreparedGraphFallsBackInProcess) {
  const Graph prepared = bench::hard_instance(8, 8, 5).graph;
  const Graph other = random_regular(200, 6, 3);
  ProcShardedBackend backend(2);
  backend.prepare(prepared);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  // Runs on a graph the backend never prepared: every stage must fall
  // back in-process, be counted, and still produce the oracle result.
  const AlgorithmResult res = bench::run_registered("trial", other, req);
  AlgorithmRequest plain = req;
  plain.engine.backend = nullptr;
  const AlgorithmResult baseline =
      bench::run_registered("trial", other, plain);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.color, baseline.color);
  EXPECT_EQ(res.ledger.total(), baseline.ledger.total());
  EXPECT_EQ(backend.totals().stages, 0u);
  EXPECT_GT(backend.totals().fallback_stages, 0u);
}

// --- worker death ------------------------------------------------------------

TEST(ShardBackend, KilledWorkerSurfacesAsWorkerDeathCellError) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  ArmedScope armed({spec_of("process-kill@round=1,shard=1")});
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  try {
    bench::run_registered("trial", g, req);
    FAIL() << "expected a worker-death CellError";
  } catch (const CellError& e) {
    EXPECT_EQ(e.category(), FaultCategory::kWorkerDeath) << e.what();
  }
}

TEST(ShardBackend, BackendSurvivesAWorkerDeath) {
  // After a stage loses a worker, the same backend (and plan) must run the
  // next stage cleanly — dead channels and pids are per ShardStage.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  {
    ArmedScope armed({spec_of("process-kill@round=0,shard=0")});
    EXPECT_THROW(bench::run_registered("trial", g, req), CellError);
  }
  const AlgorithmResult res = bench::run_registered("trial", g, req);
  EXPECT_TRUE(res.ok);
}

TEST(ShardBackend, SweepQuarantinesTheDeadWorkerCellOnly) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  // Kill shard 1's worker in cell 2's first attempt only.
  ArmedScope armed({spec_of("process-kill@cell=2,round=1,shard=1")});
  bench::SweepOptions opt;
  opt.workers = 1;
  opt.cell_engine = {1, false};
  opt.cell_engine.backend = &backend;
  opt.retry.quarantine = true;
  bench::SweepDriver driver(opt);
  const auto result = driver.run_cells<std::int64_t>(
      4, [&](std::size_t i, bench::CellContext& ctx) {
        AlgorithmRequest req;
        req.seed = 7 + i;
        req.engine = ctx.engine();
        const AlgorithmResult res = bench::run_registered("trial", g, req);
        EXPECT_TRUE(res.ok);
        return res.ledger.total();
      });
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) {
      EXPECT_EQ(result.outcomes[i].status, bench::CellStatus::kQuarantined);
      EXPECT_EQ(result.outcomes[i].category, FaultCategory::kWorkerDeath);
      EXPECT_EQ(result.rows[i], 0);  // default row
    } else {
      EXPECT_EQ(result.outcomes[i].status, bench::CellStatus::kOk) << i;
      EXPECT_GT(result.rows[i], 0) << i;
    }
  }
}

TEST(ShardBackend, RetryRecoversFromATransientWorkerDeath) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  // attempts=1 fires on attempt 0 only; the retry must succeed.
  ArmedScope armed({spec_of("process-kill@cell=0,round=1,shard=0,attempts=1")});
  bench::SweepOptions opt;
  opt.workers = 1;
  opt.cell_engine = {1, false};
  opt.cell_engine.backend = &backend;
  opt.retry.max_attempts = 2;
  opt.retry.quarantine = true;
  bench::SweepDriver driver(opt);
  const auto result = driver.run_cells<std::int64_t>(
      1, [&](std::size_t, bench::CellContext& ctx) {
        AlgorithmRequest req;
        req.seed = 7;
        req.engine = ctx.engine();
        return bench::run_registered("trial", g, req).ledger.total();
      });
  EXPECT_EQ(result.outcomes[0].status, bench::CellStatus::kRetried);
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_GT(result.rows[0], 0);
}

}  // namespace
}  // namespace deltacolor
