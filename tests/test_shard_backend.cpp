// The multi-process execution backend's fidelity contract, end to end:
//  (a) transport framing round-trips and reports peer death as clean EOF;
//  (b) every registry algorithm is bit-identical between the in-process
//      engine and the proc backend at 1, 2, and 4 shards (colors, sets,
//      round totals, palette) — the golden-parity gate of the backend;
//  (c) stages the backend cannot shard (nested subgraphs, non-POD state)
//      fall back in-process and are counted, never wrong;
//  (d) a worker killed mid-stage surfaces as a structured worker-death
//      CellError, which the sweep driver's quarantine turns into a
//      partial-result table instead of a torn-down batch;
//  (e) the PR 10 self-healing path: a killed or hung worker is respawned
//      and the stage replayed bit-identically, a slow worker is never a
//      stall false positive, an exhausted respawn budget degrades the
//      stage in-process, a torn slab publish surfaces as a structured
//      engine error, and the DELTACOLOR_FAULTS grammar rejects malformed
//      specs with did-you-mean suggestions.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_support/sweep.hpp"
#include "bench_support/workloads.hpp"
#include "common/errors.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "local/backend.hpp"
#include "local/faults.hpp"
#include "local/halo_plane.hpp"
#include "local/shard_runner.hpp"
#include "local/transport.hpp"
#include "registry/registry.hpp"

namespace deltacolor {
namespace {

/// Arms `plan` for the scope of one test and disarms on exit.
class ArmedScope {
 public:
  explicit ArmedScope(std::vector<FaultSpec> plan, std::uint64_t seed = 1) {
    FaultInjector::global().arm(std::move(plan), seed);
  }
  ~ArmedScope() { FaultInjector::global().disarm(); }
};

FaultSpec spec_of(std::string_view text) {
  FaultSpec spec;
  EXPECT_TRUE(parse_fault_spec(text, &spec)) << text;
  return spec;
}

// --- transport ---------------------------------------------------------------

TEST(Transport, FramesRoundTrip) {
  auto [coord, worker] = FrameChannel::open_pair();
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  coord.send(FrameType::kStep, payload);
  Frame f;
  ASSERT_TRUE(worker.recv(&f));
  EXPECT_EQ(f.type, FrameType::kStep);
  EXPECT_EQ(f.payload, payload);

  worker.send(FrameType::kBarrier, nullptr, 0);
  ASSERT_TRUE(coord.recv(&f));
  EXPECT_EQ(f.type, FrameType::kBarrier);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Transport, PeerCloseIsCleanEofThenSendThrows) {
  auto [coord, worker] = FrameChannel::open_pair();
  worker.close();
  Frame f;
  EXPECT_FALSE(coord.recv(&f));  // orderly EOF, not an exception
  // Writing into the closed peer must surface as TransportError (EPIPE is
  // suppressed as a signal), not kill the process.
  const std::vector<std::uint8_t> payload(1 << 16, 0xab);
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) coord.send(FrameType::kStep, payload);
      },
      TransportError);
}

TEST(Transport, BackToBackFramesKeepBoundaries) {
  auto [coord, worker] = FrameChannel::open_pair();
  for (std::uint8_t i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> payload(i * 7, i);
    coord.send(FrameType::kBarrier, payload);
  }
  Frame f;
  for (std::uint8_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(worker.recv(&f));
    ASSERT_EQ(f.payload.size(), static_cast<std::size_t>(i) * 7);
    for (const std::uint8_t b : f.payload) EXPECT_EQ(b, i);
  }
}

std::vector<std::uint8_t> patterned_payload(std::size_t size) {
  std::vector<std::uint8_t> payload(size);
  for (std::size_t i = 0; i < size; ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
  return payload;
}

TEST(Transport, ShortWritesAndShortReadsReassembleTheFrame) {
  // Shrink both socket buffers so a multi-megabyte frame cannot move in one
  // syscall: send() must loop over partial writes while a peer thread
  // drains, and recv() must stitch the frame back from many short reads.
  auto [coord, worker] = FrameChannel::open_pair();
  const int small = 4096;
  setsockopt(coord.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(worker.fd(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const std::vector<std::uint8_t> payload = patterned_payload(1 << 22);
  std::thread sender(
      [&coord = coord, &payload] { coord.send(FrameType::kStageBegin, payload); });
  Frame f;
  ASSERT_TRUE(worker.recv(&f));
  sender.join();
  EXPECT_EQ(f.type, FrameType::kStageBegin);
  EXPECT_EQ(f.payload, payload);
}

TEST(Transport, DribbledHeaderAndPayloadBytesKeepBoundaries) {
  // A peer that trickles one byte per write (header split across writes,
  // then the payload) must still produce exactly one intact frame: recv()'s
  // short-read loop may never treat a partial header or payload as a frame
  // boundary.
  auto [coord, worker] = FrameChannel::open_pair();
  const std::vector<std::uint8_t> payload = {9, 8, 7, 6, 5};
  std::vector<std::uint8_t> wire;
  const std::uint32_t len = static_cast<std::uint32_t>(1 + payload.size());
  wire.resize(4);
  std::memcpy(wire.data(), &len, 4);
  wire.push_back(static_cast<std::uint8_t>(FrameType::kBarrier));
  wire.insert(wire.end(), payload.begin(), payload.end());
  std::thread dribbler([fd = coord.fd(), wire] {
    for (const std::uint8_t b : wire) {
      ASSERT_EQ(write(fd, &b, 1), 1);
      usleep(200);
    }
  });
  Frame f;
  ASSERT_TRUE(worker.recv(&f));
  dribbler.join();
  EXPECT_EQ(f.type, FrameType::kBarrier);
  EXPECT_EQ(f.payload, payload);
}

void eintr_noop_handler(int) {}

TEST(Transport, EintrMidTransferIsRetriedWithoutTearing) {
  // A 1ms interval timer with a no-SA_RESTART handler peppers both the
  // sending and receiving threads with EINTR while a large frame crawls
  // through 4 KiB socket buffers; the transport's retry loops must absorb
  // every interruption without tearing or duplicating bytes.
  struct sigaction sa = {};
  sa.sa_handler = eintr_noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_sa = {};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);
  itimerval timer = {};
  timer.it_interval.tv_usec = 1000;
  timer.it_value.tv_usec = 1000;
  itimerval old_timer = {};
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, &old_timer), 0);

  auto [coord, worker] = FrameChannel::open_pair();
  const int small = 4096;
  setsockopt(coord.fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(worker.fd(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const std::vector<std::uint8_t> payload = patterned_payload(1 << 22);
  std::thread sender(
      [&coord = coord, &payload] { coord.send(FrameType::kStep, payload); });
  Frame f;
  const bool got = worker.recv(&f);
  sender.join();

  itimerval off = {};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old_sa, nullptr);

  ASSERT_TRUE(got);
  EXPECT_EQ(f.type, FrameType::kStep);
  EXPECT_EQ(f.payload, payload);
}

// --- halo plane --------------------------------------------------------------

TEST(HaloPlane, SeqlockEpochOrdersRecordsAcrossThreads) {
  // Writer publishes 64 rounds of records through the double-buffered
  // slabs; the reader learns of each publish only through the epoch stamp's
  // release/acquire pair (it spins on open() until the stamp appears).
  // Under TSan this pins that the record bytes are ordered by the epoch
  // stamp alone. The writer waits for consumption before reusing a parity
  // buffer, mirroring the runner's gather-all-barriers-then-release rule.
  const Graph g = random_regular(64, 4, 1);
  const ShardManifest mf = ShardManifest::build(g, 2);
  HaloPlane plane(mf, g.num_nodes(), 1 << 16);
  ASSERT_TRUE(plane.valid());
  constexpr std::size_t kRecord = 12;
  constexpr int kRounds = 64;
  const auto epoch_of = [](int round) {
    return (std::uint64_t{1} << 32) | static_cast<std::uint32_t>(round);
  };
  ASSERT_GE(plane.slab_capacity(0), kRecord);

  std::atomic<int> consumed{-1};
  std::thread writer([&] {
    for (int r = 0; r < kRounds; ++r) {
      while (consumed.load(std::memory_order_acquire) < r - 1)
        std::this_thread::yield();
      std::uint8_t* slab = plane.slab_records(0, r & 1);
      for (std::size_t i = 0; i < kRecord; ++i)
        slab[i] = static_cast<std::uint8_t>(r + static_cast<int>(i));
      plane.publish(0, r & 1, epoch_of(r), 1);
    }
  });
  for (int r = 0; r < kRounds; ++r) {
    HaloPlane::SlabView view;
    for (;;) {
      try {
        view = plane.open(0, r & 1, epoch_of(r), kRecord);
        break;
      } catch (const TransportError&) {
        std::this_thread::yield();  // not published yet
      }
    }
    ASSERT_EQ(view.count, 1u);
    for (std::size_t i = 0; i < kRecord; ++i)
      ASSERT_EQ(view.records[i],
                static_cast<std::uint8_t>(r + static_cast<int>(i)))
          << "round " << r << " byte " << i;
    consumed.store(r, std::memory_order_release);
  }
  writer.join();
}

TEST(HaloPlane, TornSlabsAreStructuredTransportErrors) {
  const Graph g = random_regular(64, 4, 1);
  const ShardManifest mf = ShardManifest::build(g, 2);
  HaloPlane plane(mf, g.num_nodes(), 1 << 16);
  constexpr std::size_t kRecord = 12;
  // Unpublished slab: epoch 0 never matches a real stage epoch (stage ids
  // start at 1), so open() reports a mismatch.
  EXPECT_THROW(plane.open(0, 0, (std::uint64_t{1} << 32) | 0, kRecord),
               TransportError);
  // A count whose byte size exceeds the slab capacity (torn or corrupt
  // publish) must surface as a bounds error before any record is read.
  const std::uint32_t oversized = static_cast<std::uint32_t>(
      plane.slab_capacity(0) / kRecord + 1);
  plane.publish(0, 0, (std::uint64_t{2} << 32) | 0, oversized);
  EXPECT_THROW(plane.open(0, 0, (std::uint64_t{2} << 32) | 0, kRecord),
               TransportError);
  // Same slab, corrected count: opens cleanly.
  plane.publish(0, 0, (std::uint64_t{3} << 32) | 0, 1);
  EXPECT_NO_THROW(plane.open(0, 0, (std::uint64_t{3} << 32) | 0, kRecord));
}

// --- epoch barrier -----------------------------------------------------------

/// A stage context over a pool-less plan, enough for epoch_barrier_wait:
/// the manifest (peer count), the plane (cells + futex word), and a live
/// control channel (the waiter's coordinator-death probe must see a
/// healthy socket). Keeps both channel ends open for its lifetime.
struct BarrierFixture {
  Graph g;
  ShardPlan plan;
  HaloPlane plane;
  FrameChannel coord;
  FrameChannel worker;
  WorkerStageCtx ctx;

  explicit BarrierFixture(int shards, int shard = 0,
                          std::uint64_t stage_id = 1)
      : g(random_regular(96, 4, 2)) {
    plan.graph = &g;
    plan.manifest = ShardManifest::build(g, shards);
    plane = HaloPlane(plan.manifest, g.num_nodes(), 1 << 12);
    auto [c, w] = FrameChannel::open_pair();
    coord = std::move(c);
    worker = std::move(w);
    ctx.plan = &plan;
    ctx.plane = &plane;
    ctx.ch = &worker;
    ctx.shard = shard;
    ctx.stage_id = stage_id;
    ctx.max_rounds = 64;
  }
};

TEST(HaloPlane, EpochBarrierReleasesOnlyWhenEveryPeerArrives) {
  // A lagging peer holds the barrier: the waiter (spin-then-futex) must
  // stay blocked until the *last* peer's cell reaches the round's epoch,
  // and the returned collective done vote must AND every peer's bit.
  BarrierFixture fx(3);
  std::atomic<bool> released{false};
  std::atomic<bool> vote{false};
  fx.plane.barrier_arrive(0, fx.ctx.epoch(0) | kBarrierDoneBit);
  std::thread waiter([&] {
    vote.store(epoch_barrier_wait(fx.ctx, 0, [] {}));
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());  // no peer has arrived
  fx.plane.barrier_arrive(1, fx.ctx.epoch(0) | kBarrierDoneBit);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());  // shard 2 still lagging
  fx.plane.barrier_arrive(2, fx.ctx.epoch(0));  // arrives voting not-done
  waiter.join();
  EXPECT_TRUE(released.load());
  EXPECT_FALSE(vote.load());  // one peer withheld its done vote

  // Next round: every peer votes done -> collective vote is true.
  fx.plane.barrier_arrive(0, fx.ctx.epoch(1) | kBarrierDoneBit);
  std::thread waiter2(
      [&] { vote.store(epoch_barrier_wait(fx.ctx, 1, [] {})); });
  fx.plane.barrier_arrive(1, fx.ctx.epoch(1) | kBarrierDoneBit);
  fx.plane.barrier_arrive(2, fx.ctx.epoch(1) | kBarrierDoneBit);
  waiter2.join();
  EXPECT_TRUE(vote.load());
}

TEST(HaloPlane, BarrierCellsCarryAcrossStagesWithoutReset) {
  // Stage ids grow monotonically, so a new stage's round-0 epoch exceeds
  // everything the previous stage left in the cells: a stale peer cell
  // reads as "not yet arrived" — never as torn state — and the cells need
  // no reset at stage boundaries.
  BarrierFixture fx(2);
  for (int r = 0; r <= 2; ++r) {  // stage 1 runs to completion
    fx.plane.barrier_arrive(0, fx.ctx.epoch(r));
    fx.plane.barrier_arrive(1, fx.ctx.epoch(r));
  }
  fx.ctx.stage_id = 2;  // next dispatched stage
  std::atomic<bool> released{false};
  fx.plane.barrier_arrive(0, fx.ctx.epoch(0));
  std::thread waiter([&] {
    epoch_barrier_wait(fx.ctx, 0, [] {});
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(released.load());  // peer's stage-1 cell must not satisfy it
  fx.plane.barrier_arrive(1, fx.ctx.epoch(0));
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(HaloPlane, TornBarrierEpochIsAStructuredTransportError) {
  // A peer cell more than one round ahead (or in a future stage) can only
  // mean corrupted shared memory or a protocol bug — a healthy peer can
  // lead the waiter by at most one round. Structured error, never a hang.
  BarrierFixture fx(2);
  fx.plane.barrier_arrive(0, fx.ctx.epoch(1));
  fx.plane.barrier_arrive(1, fx.ctx.epoch(5));
  EXPECT_THROW(epoch_barrier_wait(fx.ctx, 1, [] {}), TransportError);
  // A peer exactly one round ahead is legal and forces "continue".
  fx.plane.barrier_arrive(1, fx.ctx.epoch(2));
  EXPECT_FALSE(epoch_barrier_wait(fx.ctx, 1, [] {}));
  // A peer in a *future stage* is torn regardless of its round bits.
  fx.plane.barrier_arrive(0, fx.ctx.epoch(3));
  fx.plane.barrier_arrive(
      1, ((fx.ctx.stage_id + 1) << 32) | std::uint64_t{0});
  EXPECT_THROW(epoch_barrier_wait(fx.ctx, 3, [] {}), TransportError);
}

TEST(HaloPlane, BarrierArrivalOrdersPeerWritesAcrossThreads) {
  // The only synchronization between a peer's pre-arrival writes and this
  // shard's post-wait reads is the barrier cell's release store / acquire
  // load (plus the futex word's bump). Under TSan this pins that the
  // epoch-barrier edge alone is a sufficient happens-before — the
  // cross-process analogue every shm-mode round relies on when it reads
  // peer slabs after the barrier opens.
  BarrierFixture fx(2);
  int payload[64] = {0};  // plain, non-atomic shared data
  fx.plane.barrier_arrive(0, fx.ctx.epoch(0));
  std::thread peer([&] {
    for (int i = 0; i < 64; ++i) payload[i] = i + 1;
    fx.plane.barrier_arrive(1, fx.ctx.epoch(0));
  });
  epoch_barrier_wait(fx.ctx, 0, [] {});
  for (int i = 0; i < 64; ++i) EXPECT_EQ(payload[i], i + 1);
  peer.join();
}

// --- golden parity -----------------------------------------------------------

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ULL;
}

std::uint64_t result_hash(const AlgorithmResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const Color c : r.color) h = fnv(h, static_cast<std::uint64_t>(c) + 1);
  for (const bool b : r.in_set) h = fnv(h, b ? 2 : 1);
  h = fnv(h, static_cast<std::uint64_t>(r.ledger.total()));
  h = fnv(h, static_cast<std::uint64_t>(r.palette));
  return h;
}

TEST(ShardBackend, EveryRegistryAlgorithmBitIdenticalAcrossShardCounts) {
  // The golden-parity gate, squared over the two barrier protocols: the
  // shm epoch barrier and the frames escape hatch must both reproduce the
  // in-process oracle bit for bit at every shard count.
  const Graph g = bench::hard_instance(16, 10, 5).graph;
  std::uint64_t sharded_stages = 0;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    AlgorithmRequest req;
    req.seed = 7;
    req.engine = {1, false};
    const AlgorithmResult baseline = bench::run_registered(entry.name, g, req);
    EXPECT_TRUE(baseline.ok) << entry.name;
    for (const BarrierMode mode : {BarrierMode::kShm, BarrierMode::kFrames}) {
      for (const int shards : {1, 2, 4}) {
        ProcShardedBackend backend(shards, /*persistent=*/true, mode);
        backend.prepare(g);
        AlgorithmRequest proc_req = req;
        proc_req.engine.backend = &backend;
        const AlgorithmResult res =
            bench::run_registered(entry.name, g, proc_req);
        const std::string tag = std::string(entry.name) + " shards=" +
                                std::to_string(shards) + " barrier=" +
                                barrier_mode_name(mode);
        EXPECT_TRUE(res.ok) << tag;
        EXPECT_EQ(res.color, baseline.color) << tag;
        EXPECT_EQ(res.in_set, baseline.in_set) << tag;
        EXPECT_EQ(res.ledger.total(), baseline.ledger.total()) << tag;
        EXPECT_EQ(res.palette, baseline.palette) << tag;
        EXPECT_EQ(result_hash(res), result_hash(baseline)) << tag;
        sharded_stages += backend.totals().stages;
      }
    }
  }
  // The parity above would hold vacuously if nothing ever sharded; pin
  // that the backend actually executed forked stages.
  EXPECT_GT(sharded_stages, 0u);
}

TEST(ShardBackend, ShardCountClampsToTheNodeCount) {
  // Requesting more shards than the graph can fill must not fork workers
  // for empty ranges: the backend clamps at prepare() (with a stderr
  // warning) and the whole pipeline runs — bit-identically — at the
  // effective count.
  const Graph g = random_regular(6, 2, 3);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  const AlgorithmResult baseline = bench::run_registered("trial", g, req);

  ProcShardedBackend backend(16);
  backend.prepare(g);
  const int effective = backend.totals().effective_shards;
  ASSERT_GE(effective, 1);
  ASSERT_LE(effective, 6);
  AlgorithmRequest proc_req = req;
  proc_req.engine.backend = &backend;
  const AlgorithmResult res = bench::run_registered("trial", g, proc_req);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.color, baseline.color);
  EXPECT_EQ(res.ledger.total(), baseline.ledger.total());
  const ProcShardedBackend::Totals totals = backend.totals();
  EXPECT_GT(totals.stages, 0u);
  // Forks follow the effective count, not the requested 16.
  EXPECT_EQ(totals.forks, static_cast<std::uint64_t>(effective));
  EXPECT_EQ(totals.ghost_bytes_in.size(),
            static_cast<std::size_t>(effective));
}

TEST(ShardBackend, BarrierTimingAndControlFramesAreAccounted) {
  // Satellite accounting: both barrier modes ship per-round barrier-wait /
  // halo-publish samples home in STAGE_END, and the control-frame counter
  // exposes the A/B the bench asserts — the frame barrier pays 2 frames
  // per shard per round on top of the per-stage envelope, the shm barrier
  // only the envelope.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};

  ProcShardedBackend shm(2, /*persistent=*/true, BarrierMode::kShm);
  shm.prepare(g);
  AlgorithmRequest sreq = req;
  sreq.engine.backend = &shm;
  EXPECT_TRUE(bench::run_registered("trial", g, sreq).ok);
  const ProcShardedBackend::Totals st = shm.totals();

  ProcShardedBackend frames(2, /*persistent=*/true, BarrierMode::kFrames);
  frames.prepare(g);
  AlgorithmRequest freq = req;
  freq.engine.backend = &frames;
  EXPECT_TRUE(bench::run_registered("trial", g, freq).ok);
  const ProcShardedBackend::Totals ft = frames.totals();

  ASSERT_EQ(st.stages, ft.stages);
  ASSERT_EQ(st.rounds, ft.rounds);
  // Envelope only vs envelope + 2 frames/shard/round (send + recv counted):
  // the per-round gap is the syscall win the tentpole claims.
  EXPECT_GT(st.ctl_frames, 0u);
  EXPECT_GE(ft.ctl_frames, st.ctl_frames + 2 * ft.rounds);
  // Both modes ship timing samples for every shard that ran rounds.
  ASSERT_EQ(st.barrier_wait_ns.size(), 2u);
  ASSERT_EQ(ft.barrier_wait_ns.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_FALSE(st.barrier_wait_ns[s].empty()) << "shm shard " << s;
    EXPECT_FALSE(ft.barrier_wait_ns[s].empty()) << "frames shard " << s;
    EXPECT_FALSE(st.halo_publish_ns[s].empty()) << "shm shard " << s;
  }
  // The SHARDS report carries the new columns and names the barrier mode.
  const std::string report = shm.report();
  EXPECT_NE(report.find("barrier_wait_ns_p50="), std::string::npos) << report;
  EXPECT_NE(report.find("halo_publish_ns_p95="), std::string::npos) << report;
  EXPECT_NE(report.find("barrier=shm"), std::string::npos) << report;
  EXPECT_NE(report.find("ctl_frames="), std::string::npos) << report;
  EXPECT_NE(frames.report().find("barrier=frames"), std::string::npos);
}

TEST(ShardBackend, HaloTrafficIsAccounted) {
  // The message-passing trial coloring keeps every node active until its
  // commit round, so a 2-shard split of a connected instance must exchange
  // boundary records.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.prepare(g);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  const AlgorithmResult res = bench::run_registered("trial", g, req);
  EXPECT_TRUE(res.ok);
  const ProcShardedBackend::Totals totals = backend.totals();
  EXPECT_GT(totals.stages, 0u);
  EXPECT_GT(totals.rounds, 0u);
  ASSERT_EQ(totals.ghost_bytes_in.size(), 2u);
  EXPECT_GT(totals.ghost_bytes_in[0] + totals.ghost_bytes_in[1], 0u);
  EXPECT_GT(totals.boundary_bytes_out[0] + totals.boundary_bytes_out[1], 0u);
  const std::string report = backend.report();
  EXPECT_NE(report.find("SHARDS shard=0"), std::string::npos) << report;
  EXPECT_NE(report.find("SHARDS total"), std::string::npos) << report;
}

TEST(ShardBackend, UnpreparedGraphFallsBackInProcess) {
  const Graph prepared = bench::hard_instance(8, 8, 5).graph;
  const Graph other = random_regular(200, 6, 3);
  ProcShardedBackend backend(2);
  backend.prepare(prepared);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  // Runs on a graph the backend never prepared: every stage must fall
  // back in-process, be counted, and still produce the oracle result.
  const AlgorithmResult res = bench::run_registered("trial", other, req);
  AlgorithmRequest plain = req;
  plain.engine.backend = nullptr;
  const AlgorithmResult baseline =
      bench::run_registered("trial", other, plain);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.color, baseline.color);
  EXPECT_EQ(res.ledger.total(), baseline.ledger.total());
  EXPECT_EQ(backend.totals().stages, 0u);
  EXPECT_GT(backend.totals().fallback_stages, 0u);
}

TEST(ShardBackend, PersistentPoolForksOncePerShardAcrossStages) {
  // The tentpole accounting contract: a persistent backend forks exactly
  // `shards` workers at prepare() no matter how many stages it dispatches
  // (stage_reuse == stages), while the fork-per-stage baseline pays
  // shards x stages forks.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};

  ProcShardedBackend persistent(2);
  persistent.prepare(g);
  AlgorithmRequest preq = req;
  preq.engine.backend = &persistent;
  EXPECT_TRUE(bench::run_registered("trial", g, preq).ok);
  EXPECT_TRUE(bench::run_registered("mis", g, preq).ok);
  const ProcShardedBackend::Totals pt = persistent.totals();
  EXPECT_GE(pt.stages, 2u);
  EXPECT_EQ(pt.forks, 2u);
  EXPECT_EQ(pt.stage_reuse, pt.stages);
  EXPECT_GT(pt.shm_bytes, 0u);

  ProcShardedBackend forked(2, /*persistent=*/false);
  forked.prepare(g);
  AlgorithmRequest freq = req;
  freq.engine.backend = &forked;
  EXPECT_TRUE(bench::run_registered("trial", g, freq).ok);
  EXPECT_TRUE(bench::run_registered("mis", g, freq).ok);
  const ProcShardedBackend::Totals ft = forked.totals();
  EXPECT_EQ(ft.stages, pt.stages);
  EXPECT_EQ(ft.forks, 2u * ft.stages);
  EXPECT_EQ(ft.stage_reuse, 0u);
  // The SHARDS report carries the new columns for CI's forks-per-cell
  // assertion.
  const std::string report = persistent.report();
  EXPECT_NE(report.find(" forks=2 "), std::string::npos) << report;
  EXPECT_NE(report.find(" stage_reuse="), std::string::npos) << report;
  EXPECT_NE(report.find(" shm_bytes="), std::string::npos) << report;
}

// --- worker death ------------------------------------------------------------
// These four pin the *propagation* path — what a worker death looks like
// when the pool is not allowed to heal it — so they disable the respawn
// budget and in-process degradation that PR 10 turned on by default. The
// recovery tests below cover the healing path.

TEST(ShardBackend, KilledWorkerSurfacesAsWorkerDeathCellError) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(0);
  backend.set_degrade(false);
  backend.prepare(g);
  ArmedScope armed({spec_of("process-kill@round=1,shard=1")});
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  try {
    bench::run_registered("trial", g, req);
    FAIL() << "expected a worker-death CellError";
  } catch (const CellError& e) {
    EXPECT_EQ(e.category(), FaultCategory::kWorkerDeath) << e.what();
  }
}

TEST(ShardBackend, BackendSurvivesAWorkerDeath) {
  // After a stage loses a worker, the same backend (and plan) must run the
  // next stage cleanly — dead channels and pids are per ShardStage.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(0);
  backend.set_degrade(false);
  backend.prepare(g);
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  {
    ArmedScope armed({spec_of("process-kill@round=0,shard=0")});
    EXPECT_THROW(bench::run_registered("trial", g, req), CellError);
  }
  const AlgorithmResult res = bench::run_registered("trial", g, req);
  EXPECT_TRUE(res.ok);
}

TEST(ShardBackend, SweepQuarantinesTheDeadWorkerCellOnly) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(0);
  backend.set_degrade(false);
  backend.prepare(g);
  // Kill shard 1's worker in cell 2's first attempt only.
  ArmedScope armed({spec_of("process-kill@cell=2,round=1,shard=1")});
  bench::SweepOptions opt;
  opt.workers = 1;
  opt.cell_engine = {1, false};
  opt.cell_engine.backend = &backend;
  opt.retry.quarantine = true;
  bench::SweepDriver driver(opt);
  const auto result = driver.run_cells<std::int64_t>(
      4, [&](std::size_t i, bench::CellContext& ctx) {
        AlgorithmRequest req;
        req.seed = 7 + i;
        req.engine = ctx.engine();
        const AlgorithmResult res = bench::run_registered("trial", g, req);
        EXPECT_TRUE(res.ok);
        return res.ledger.total();
      });
  ASSERT_EQ(result.outcomes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    if (i == 2) {
      EXPECT_EQ(result.outcomes[i].status, bench::CellStatus::kQuarantined);
      EXPECT_EQ(result.outcomes[i].category, FaultCategory::kWorkerDeath);
      EXPECT_EQ(result.rows[i], 0);  // default row
    } else {
      EXPECT_EQ(result.outcomes[i].status, bench::CellStatus::kOk) << i;
      EXPECT_GT(result.rows[i], 0) << i;
    }
  }
}

TEST(ShardBackend, RetryRecoversFromATransientWorkerDeath) {
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(0);
  backend.set_degrade(false);
  backend.prepare(g);
  // attempts=1 fires on attempt 0 only; the retry must succeed.
  ArmedScope armed({spec_of("process-kill@cell=0,round=1,shard=0,attempts=1")});
  bench::SweepOptions opt;
  opt.workers = 1;
  opt.cell_engine = {1, false};
  opt.cell_engine.backend = &backend;
  opt.retry.max_attempts = 2;
  opt.retry.quarantine = true;
  bench::SweepDriver driver(opt);
  const auto result = driver.run_cells<std::int64_t>(
      1, [&](std::size_t, bench::CellContext& ctx) {
        AlgorithmRequest req;
        req.seed = 7;
        req.engine = ctx.engine();
        return bench::run_registered("trial", g, req).ledger.total();
      });
  EXPECT_EQ(result.outcomes[0].status, bench::CellStatus::kRetried);
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_GT(result.rows[0], 0);
}

// --- self-healing recovery ---------------------------------------------------

TEST(ShardRecovery, RespawnReplayIsBitIdenticalForEveryRegistryAlgorithm) {
  // Kill shard 1's worker at round 0 of every dispatched stage: the pool
  // must respawn it, replay each interrupted stage from the snapshot, and
  // land every registry algorithm on the oracle result at 2 and 4 shards.
  // (attempts=1 means the replay attempt runs clean — the fault wire's
  // attempt index is bumped per replay.)
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  std::uint64_t total_respawns = 0;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    AlgorithmRequest req;
    req.seed = 7;
    req.engine = {1, false};
    const AlgorithmResult baseline = bench::run_registered(entry.name, g, req);
    ASSERT_TRUE(baseline.ok) << entry.name;
    for (const int shards : {2, 4}) {
      ProcShardedBackend backend(shards);
      backend.set_respawn_budget(2);
      backend.set_degrade(false);
      backend.prepare(g);
      ArmedScope armed({spec_of("process-kill@round=0,shard=1")});
      AlgorithmRequest proc_req = req;
      proc_req.engine.backend = &backend;
      const AlgorithmResult res = bench::run_registered(entry.name, g, proc_req);
      const std::string tag =
          std::string(entry.name) + " shards=" + std::to_string(shards);
      EXPECT_TRUE(res.ok) << tag;
      EXPECT_EQ(res.color, baseline.color) << tag;
      EXPECT_EQ(res.in_set, baseline.in_set) << tag;
      EXPECT_EQ(res.ledger.total(), baseline.ledger.total()) << tag;
      EXPECT_EQ(res.palette, baseline.palette) << tag;
      EXPECT_EQ(result_hash(res), result_hash(baseline)) << tag;
      const ProcShardedBackend::Totals totals = backend.totals();
      // Every algorithm that dispatched at least one sharded stage lost a
      // worker at round 0 and must have healed it.
      if (totals.stages > 0) EXPECT_GE(totals.respawns, 1u) << tag;
      EXPECT_EQ(totals.degraded, 0u) << tag;
      total_respawns += totals.respawns;
    }
  }
  // And the sweep as a whole must have exercised the respawn path.
  EXPECT_GT(total_respawns, 0u);
}

TEST(ShardRecovery, WatchdogDetectsAHungWorkerInBothBarrierModes) {
  // A worker that spins forever (alive, channel open, barrier epoch frozen)
  // is invisible to EOF detection; only the stall watchdog can catch it.
  // Both the shm epoch watchdog and the frames silence heuristic must kill
  // the straggler, respawn it, and replay to the oracle result.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  const AlgorithmResult baseline = bench::run_registered("trial", g, req);
  for (const BarrierMode mode : {BarrierMode::kShm, BarrierMode::kFrames}) {
    ProcShardedBackend backend(2, /*persistent=*/true, mode);
    backend.set_stall_ms(300);
    backend.set_respawn_budget(2);
    backend.set_degrade(false);
    backend.prepare(g);
    ArmedScope armed({spec_of("worker-hang@round=1,shard=1")});
    AlgorithmRequest proc_req = req;
    proc_req.engine.backend = &backend;
    const AlgorithmResult res = bench::run_registered("trial", g, proc_req);
    const std::string tag = barrier_mode_name(mode);
    EXPECT_TRUE(res.ok) << tag;
    EXPECT_EQ(res.color, baseline.color) << tag;
    EXPECT_EQ(res.ledger.total(), baseline.ledger.total()) << tag;
    const ProcShardedBackend::Totals totals = backend.totals();
    EXPECT_GE(totals.stalls, 1u) << tag;
    EXPECT_GE(totals.respawns, 1u) << tag;
    EXPECT_EQ(totals.degraded, 0u) << tag;
  }
}

TEST(ShardRecovery, SlowWorkerIsNotAStallFalsePositive) {
  // A worker that is merely slow (sleeps well under the deadline) must
  // never be flagged: the watchdog requires the epoch to be frozen for the
  // full stall budget, not just "slower than its peers".
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  const AlgorithmResult baseline = bench::run_registered("trial", g, req);
  ProcShardedBackend backend(2);
  backend.set_stall_ms(10000);
  backend.prepare(g);
  ArmedScope armed({spec_of("wall-clock-timeout@round=1,sleep_ms=150")});
  AlgorithmRequest proc_req = req;
  proc_req.engine.backend = &backend;
  const AlgorithmResult res = bench::run_registered("trial", g, proc_req);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.color, baseline.color);
  EXPECT_EQ(res.ledger.total(), baseline.ledger.total());
  const ProcShardedBackend::Totals totals = backend.totals();
  EXPECT_EQ(totals.stalls, 0u);
  EXPECT_EQ(totals.respawns, 0u);
  EXPECT_EQ(totals.degraded, 0u);
}

TEST(ShardRecovery, ExhaustedRespawnBudgetDegradesInProcess) {
  // attempts=0 re-fires the kill on every replay, so the respawn budget
  // runs out; with degradation enabled the stage must complete in-process
  // instead of throwing, still bit-identical to the oracle.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  const AlgorithmResult baseline = bench::run_registered("trial", g, req);
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(1);
  backend.set_degrade(true);
  backend.prepare(g);
  ArmedScope armed({spec_of("process-kill@round=1,shard=1,attempts=0")});
  AlgorithmRequest proc_req = req;
  proc_req.engine.backend = &backend;
  const AlgorithmResult res = bench::run_registered("trial", g, proc_req);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.color, baseline.color);
  EXPECT_EQ(res.in_set, baseline.in_set);
  EXPECT_EQ(res.ledger.total(), baseline.ledger.total());
  const ProcShardedBackend::Totals totals = backend.totals();
  EXPECT_GE(totals.degraded, 1u);
  EXPECT_GE(totals.respawns, 1u);  // the budget was spent before degrading
}

TEST(ShardRecovery, TornSlabPublishSurfacesAsStructuredEngineError) {
  // A corrupt halo publish (bogus record count) is detected by the *peer*
  // reader's seqlock bounds check and must surface as a structured engine
  // error naming the tear — never a hang, never silent corruption. It is
  // not a death or stall, so it must not trigger degradation.
  const Graph g = bench::hard_instance(8, 8, 5).graph;
  ProcShardedBackend backend(2);
  backend.set_respawn_budget(0);
  backend.prepare(g);
  ArmedScope armed({spec_of("torn-slab@round=1,shard=1")});
  AlgorithmRequest req;
  req.seed = 7;
  req.engine = {1, false};
  req.engine.backend = &backend;
  try {
    bench::run_registered("trial", g, req);
    FAIL() << "expected an engine-exception CellError";
  } catch (const CellError& e) {
    EXPECT_EQ(e.category(), FaultCategory::kEngineException) << e.what();
    EXPECT_NE(std::string(e.what()).find("capacity"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(backend.totals().degraded, 0u);
}

// --- fault-spec grammar ------------------------------------------------------

TEST(FaultGrammar, ParsesEveryKeyAndCategory) {
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(parse_fault_spec(
      "worker-hang@cell=3,round=2,shard=1,attempts=4", &spec, &error))
      << error;
  EXPECT_EQ(spec.category, FaultCategory::kWorkerHang);
  EXPECT_EQ(spec.cell, 3);
  EXPECT_EQ(spec.round, 2);
  EXPECT_EQ(spec.shard, 1);
  EXPECT_EQ(spec.attempts, 4);
  ASSERT_TRUE(parse_fault_spec("torn-slab@round=1,shard=0", &spec, &error))
      << error;
  EXPECT_EQ(spec.category, FaultCategory::kTornSlab);
}

TEST(FaultGrammar, UnknownCategoryGetsADidYouMean) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("process-kil@round=1", &spec, &error));
  EXPECT_NE(error.find("process-kill"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(parse_fault_spec("worker-hung@round=1", &spec, &error));
  EXPECT_NE(error.find("worker-hang"), std::string::npos) << error;
}

TEST(FaultGrammar, UnknownKeyGetsADidYouMean) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("process-kill@rond=1", &spec, &error));
  EXPECT_NE(error.find("round"), std::string::npos) << error;
}

TEST(FaultGrammar, MalformedPairsAndValuesAreRejected) {
  FaultSpec spec;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("process-kill@round", &spec, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_fault_spec("process-kill@round=abc", &spec, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_fault_spec("", &spec, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace deltacolor
