// E2 — Theorem 1, Delta-dependence: the paper's bound is
// min{O~(log^{5/3} n), O(Delta + log n)}.
//
// Sweep Delta at (roughly) fixed n. Our realized list-coloring / matching
// substitutions run class-greedy sweeps over Kuhn-Wattenhofer-reduced
// schedules, so the measured totals grow ~Delta*log(Delta) — between the
// paper's O(Delta) black boxes and naive class-greedy's Delta^2 (the
// substitution is documented in DESIGN.md). The table separates the
// n-dependent HEG phase, which stays flat, from the Delta-dependent
// constants.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E2",
         "Theorem 1: Delta-dependence at fixed n (realized as Delta*log Delta "
         "by the KW-scheduled class-greedy substitutions)");
  const std::vector<int> delta_grid = {12, 16, 24, 32, 48, 63};

  struct Row {
    NodeId n = 0;
    DeltaColoringResult res;
  };
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<Row>(
      delta_grid.size(), [&](std::size_t i, CellContext& ctx) {
        const int delta = delta_grid[i];
        const int cliques = std::max(16, 8192 / delta / delta * 2);
        const auto inst = cached_hard(cliques, delta, 5, &ctx.ledger());
        auto opt = scaled_options(delta);
        opt.engine = ctx.engine();
        Row row;
        row.res = delta_color_dense(inst->graph, opt);
        row.n = inst->graph.num_nodes();
        return row;
      });

  Table t({"Delta", "n", "rounds(total)", "heg", "total/Delta^2", "valid"});
  std::vector<double> deltas, totals;
  for (std::size_t i = 0; i < delta_grid.size(); ++i) {
    const int delta = delta_grid[i];
    const auto& res = rows[i].res;
    t.row(delta, rows[i].n, res.ledger.total(),
          res.ledger.phase_total("phase1-heg"),
          static_cast<double>(res.ledger.total()) / (delta * delta),
          res.valid ? "yes" : "NO");
    deltas.push_back(delta);
    totals.push_back(static_cast<double>(res.ledger.total()));
  }
  t.print();
  // Compare a Delta^2 fit against a Delta*log2(Delta) fit: with the
  // Kuhn-Wattenhofer schedules the realized dependence is the latter.
  std::vector<double> d2(deltas.size()), dlog(deltas.size());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    d2[i] = deltas[i] * deltas[i];
    dlog[i] = deltas[i] * std::log2(deltas[i]);
  }
  const LinearFit fit2 = fit_linear(d2, totals);
  const LinearFit fitl = fit_linear(dlog, totals);
  std::cout << "fit total ~ " << fit2.intercept << " + " << fit2.slope
            << " * Delta^2        (r2 = " << fit2.r2 << ")\n";
  std::cout << "fit total ~ " << fitl.intercept << " + " << fitl.slope
            << " * Delta*log2(D)  (r2 = " << fitl.r2 << ")\n";
  std::cout << driver.report() << "\n";
}

void BM_ColoringByDelta(benchmark::State& state) {
  const int delta = static_cast<int>(state.range(0));
  const auto inst = cached_hard(32, delta, 5);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst->graph, scaled_options(delta));
    benchmark::DoNotOptimize(res.color.data());
    state.counters["rounds"] = static_cast<double>(res.ledger.total());
  }
}
BENCHMARK(BM_ColoringByDelta)->Arg(12)->Arg(24)->Arg(48)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
