// E1 — Theorem 1: the deterministic algorithm Delta-colors constant-degree
// dense graphs in O(log n) rounds.
//
// Sweep n at fixed Delta on all-hard blow-up instances; report total
// rounds, the per-phase breakdown, and least-squares fits of the
// n-dependent phase (hyperedge grabbing) against log2 n. The class-greedy
// subroutines contribute large Delta-dependent constants (documented
// substitutions of the GG24/MT20 black boxes); only the HEG phase grows
// with n, exactly as Lemma 18's decomposition predicts.
//
// Cells run through SweepDriver: instances come from the keyed
// InstanceCache and the grid executes concurrently when sweep workers are
// available, with rows (and BENCH_JSON lines) emitted in grid order.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_support/codec.hpp"
#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E1", "Theorem 1: deterministic Delta-coloring in O(log n) rounds");

  struct Cell {
    int delta;
    int cliques;
  };
  std::vector<Cell> cells;
  for (const int delta : {16, 32})
    for (int cliques = 32; cliques <= 2048; cliques *= 2)
      cells.push_back({delta, cliques});

  // Scalar row + stored ledger, so the sweep is journalable: with
  // DELTACOLOR_SWEEP_JOURNAL / _RESUME set, completed cells round-trip
  // through the JSONL checkpoint instead of re-running.
  struct Row {
    NodeId n = 0;
    double wall_ms = 0;
    bool valid = false;
    std::int64_t triads = 0;
    RoundLedger ledger;
  };
  const CellCodec<Row> codec{
      [](const Row& row) {
        return FieldWriter()
            .add(row.n)
            .add(row.wall_ms)
            .add(row.valid ? 1 : 0)
            .add(row.triads)
            .add(encode_ledger(row.ledger))
            .str();
      },
      [](std::string_view text, Row* row) {
        FieldReader in(text);
        std::int64_t n = 0;
        std::string_view ledger;
        if (!in.next_int(&n) || !in.next_double(&row->wall_ms) ||
            !in.next_bool(&row->valid) || !in.next_int(&row->triads) ||
            !in.next(&ledger))
          return false;
        row->n = static_cast<NodeId>(n);
        return decode_ledger(ledger, &row->ledger);
      }};
  SweepDriver driver(sweep_options_from_env());
  const auto result = driver.run_cells<Row>(
      cells.size(),
      [&](std::size_t i, CellContext& ctx) {
        const auto inst = cached_hard(cells[i].cliques, cells[i].delta, 1234,
                                      &ctx.ledger());
        auto opt = scaled_options(cells[i].delta);
        opt.engine = ctx.engine();
        const auto t0 = std::chrono::steady_clock::now();
        Row row;
        const auto res = delta_color_dense(inst->graph, opt);
        row.wall_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        row.n = inst->graph.num_nodes();
        row.valid = res.valid;
        row.triads = res.hard_stats.num_triads;
        row.ledger = res.ledger;
        return row;
      },
      [&](std::size_t i) {
        // Instance-cache key fields + algorithm + seed, stable across runs.
        std::ostringstream key;
        key << "E1/det/delta=" << cells[i].delta
            << "/cliques=" << cells[i].cliques << "/seed=1234";
        return key.str();
      },
      &codec);
  const auto& rows = result.rows;

  std::size_t at = 0;
  for (const int delta : {16, 32}) {
    Table t({"n", "rounds(total)", "matching", "heg", "split", "pairs+rest",
             "triads", "valid"});
    std::vector<double> ns, heg_rounds, totals;
    for (int cliques = 32; cliques <= 2048; cliques *= 2, ++at) {
      const Row& row = rows[at];
      const auto& lg = row.ledger;
      BenchJson("E1")
          .field("delta", delta)
          .field("n", row.n)
          .field("valid", row.valid)
          .field("wall_ms", row.wall_ms)
          .ledger(lg)
          .print();
      t.row(row.n, lg.total(), lg.phase_total("phase1-matching"),
            lg.phase_total("phase1-heg"), lg.phase_total("phase2-split"),
            lg.phase_total("phase4a-pairs") + lg.phase_total("phase4b-rest"),
            row.triads, row.valid ? "yes" : "NO");
      ns.push_back(row.n);
      heg_rounds.push_back(
          static_cast<double>(lg.phase_total("phase1-heg")));
      totals.push_back(static_cast<double>(lg.total()));
    }
    std::cout << "Delta = " << delta << ":\n";
    t.print();
    const LinearFit heg_fit = fit_log(ns, heg_rounds);
    const LinearFit total_fit = fit_log(ns, totals);
    std::cout << "fit heg   ~ " << heg_fit.intercept << " + "
              << heg_fit.slope << " * log2(n)   (r2 = " << heg_fit.r2
              << ")\n";
    std::cout << "fit total ~ " << total_fit.intercept << " + "
              << total_fit.slope << " * log2(n)   (r2 = " << total_fit.r2
              << ")\n\n";
  }
  std::cout << driver.report() << "\n";

  // Paper-exact parameters (epsilon = 1/63, K = 28) at Delta = 63.
  {
    const std::vector<int> clique_counts = {128, 256, 512};
    struct ExactRow {
      NodeId n = 0;
      DeltaColoringResult res;
    };
    SweepDriver exact_driver;
    const auto exact = exact_driver.run<ExactRow>(
        clique_counts.size(), [&](std::size_t i, CellContext& ctx) {
          const auto inst =
              cached_hard(clique_counts[i], 63, 7, &ctx.ledger());
          DeltaColoringOptions opt;
          opt.hard.scale_for_delta = false;  // the paper's K = 28
          opt.engine = ctx.engine();
          ExactRow row;
          row.res = delta_color_dense(inst->graph, opt);
          row.n = inst->graph.num_nodes();
          return row;
        });
    Table t({"n", "rounds(total)", "heg", "heg_ratio", "valid"});
    for (const ExactRow& row : exact)
      t.row(row.n, row.res.ledger.total(),
            row.res.ledger.phase_total("phase1-heg"),
            row.res.hard_stats.heg_ratio, row.res.valid ? "yes" : "NO");
    std::cout << "Paper-exact parameters (Delta = 63, epsilon = 1/63, "
                 "K = 28):\n";
    t.print();
  }
}

void BM_DeterministicColoring(benchmark::State& state) {
  const int cliques = static_cast<int>(state.range(0));
  const auto inst = cached_hard(cliques, 16, 99);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst->graph, scaled_options(16));
    benchmark::DoNotOptimize(res.color.data());
    state.counters["rounds"] = static_cast<double>(res.ledger.total());
  }
  state.counters["n"] = inst->graph.num_nodes();
}
BENCHMARK(BM_DeterministicColoring)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
