// E1 — Theorem 1: the deterministic algorithm Delta-colors constant-degree
// dense graphs in O(log n) rounds.
//
// Sweep n at fixed Delta on all-hard blow-up instances; report total
// rounds, the per-phase breakdown, and least-squares fits of the
// n-dependent phase (hyperedge grabbing) against log2 n. The class-greedy
// subroutines contribute large Delta-dependent constants (documented
// substitutions of the GG24/MT20 black boxes); only the HEG phase grows
// with n, exactly as Lemma 18's decomposition predicts.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E1", "Theorem 1: deterministic Delta-coloring in O(log n) rounds");

  for (const int delta : {16, 32}) {
    Table t({"n", "rounds(total)", "matching", "heg", "split", "pairs+rest",
             "triads", "valid"});
    std::vector<double> ns, heg_rounds, totals;
    for (int cliques = 32; cliques <= 2048; cliques *= 2) {
      const CliqueInstance inst = hard_instance(cliques, delta, 1234);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = delta_color_dense(inst.graph, scaled_options(delta));
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      const auto& lg = res.ledger;
      BenchJson("E1")
          .field("delta", delta)
          .field("n", inst.graph.num_nodes())
          .field("valid", res.valid)
          .field("wall_ms", wall_ms)
          .ledger(lg)
          .print();
      t.row(inst.graph.num_nodes(), lg.total(),
            lg.phase_total("phase1-matching"), lg.phase_total("phase1-heg"),
            lg.phase_total("phase2-split"),
            lg.phase_total("phase4a-pairs") + lg.phase_total("phase4b-rest"),
            res.hard_stats.num_triads, res.valid ? "yes" : "NO");
      ns.push_back(inst.graph.num_nodes());
      heg_rounds.push_back(
          static_cast<double>(lg.phase_total("phase1-heg")));
      totals.push_back(static_cast<double>(lg.total()));
    }
    std::cout << "Delta = " << delta << ":\n";
    t.print();
    const LinearFit heg_fit = fit_log(ns, heg_rounds);
    const LinearFit total_fit = fit_log(ns, totals);
    std::cout << "fit heg   ~ " << heg_fit.intercept << " + "
              << heg_fit.slope << " * log2(n)   (r2 = " << heg_fit.r2
              << ")\n";
    std::cout << "fit total ~ " << total_fit.intercept << " + "
              << total_fit.slope << " * log2(n)   (r2 = " << total_fit.r2
              << ")\n\n";
  }

  // Paper-exact parameters (epsilon = 1/63, K = 28) at Delta = 63.
  {
    Table t({"n", "rounds(total)", "heg", "heg_ratio", "valid"});
    for (const int cliques : {128, 256, 512}) {
      const CliqueInstance inst = hard_instance(cliques, 63, 7);
      DeltaColoringOptions opt;
      opt.hard.scale_for_delta = false;  // the paper's K = 28
      const auto res = delta_color_dense(inst.graph, opt);
      t.row(inst.graph.num_nodes(), res.ledger.total(),
            res.ledger.phase_total("phase1-heg"), res.hard_stats.heg_ratio,
            res.valid ? "yes" : "NO");
    }
    std::cout << "Paper-exact parameters (Delta = 63, epsilon = 1/63, "
                 "K = 28):\n";
    t.print();
  }
}

void BM_DeterministicColoring(benchmark::State& state) {
  const int cliques = static_cast<int>(state.range(0));
  const CliqueInstance inst = hard_instance(cliques, 16, 99);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst.graph, scaled_options(16));
    benchmark::DoNotOptimize(res.color.data());
    state.counters["rounds"] = static_cast<double>(res.ledger.total());
  }
  state.counters["n"] = inst.graph.num_nodes();
}
BENCHMARK(BM_DeterministicColoring)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
