// Kernel microbench: the deg+1 inner loop (build the neighbor "taken" set,
// then pick a free color from the node's list) across three palette
// representations — the word-parallel PaletteSet, the sorted-vector +
// binary_search scan it replaced, and a std::set oracle — over palette
// widths {64, 256, 1024, 4096}. Every implementation is cross-checked
// against the oracle before timing, so a speedup reported here is a
// speedup on provably identical results.
//
// Usage: bench_kernels [--quick]   (--quick cuts iteration counts ~20x for
// the CI perf-smoke job; the emitted BENCH_JSON schema is unchanged).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_support/table.hpp"
#include "common/palette.hpp"
#include "common/rng.hpp"

namespace deltacolor::bench {
namespace {

struct Workload {
  int width = 0;
  std::vector<Color> nbr_colors;  // colors held by the neighborhood (dupes)
  std::vector<Color> list;        // the node's allowed list, shuffled
  std::size_t draw = 0;           // raw randomness for the k-th-free pick
};

Workload make_workload(int width, std::uint64_t seed) {
  Workload w;
  w.width = width;
  std::uint64_t state = seed;
  auto next = [&]() { return state = hash_mix(state, 11, 13); };
  // Degree ~ width - 1 like a hard clique: the taken set is dense, which is
  // exactly the regime the coloring phases spend their rounds in.
  const int degree = width - 1;
  w.nbr_colors.reserve(static_cast<std::size_t>(degree));
  for (int i = 0; i < degree; ++i)
    w.nbr_colors.push_back(
        static_cast<Color>(next() % static_cast<unsigned>(width)));
  for (Color c = 0; c < width; ++c) w.list.push_back(c);
  // Deterministic shuffle — the list API must not assume sorted lists.
  for (std::size_t i = w.list.size(); i > 1; --i)
    std::swap(w.list[i - 1], w.list[next() % i]);
  w.draw = static_cast<std::size_t>(next());
  return w;
}

// --- The three implementations of one deg+1-style step: build the taken
// --- set, return {first free list color, k-th free list color}.

std::pair<Color, Color> step_palette(const Workload& w, PaletteSet& taken) {
  taken.reset(w.width);
  for (const Color c : w.nbr_colors) taken.insert(c);
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (taken.contains(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (taken.contains(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

std::pair<Color, Color> step_sorted_vec(const Workload& w,
                                        std::vector<Color>& taken) {
  taken.assign(w.nbr_colors.begin(), w.nbr_colors.end());
  std::sort(taken.begin(), taken.end());
  taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
  auto is_taken = [&](Color c) {
    return std::binary_search(taken.begin(), taken.end(), c);
  };
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (is_taken(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (is_taken(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

std::pair<Color, Color> step_std_set(const Workload& w,
                                     std::set<Color>& taken) {
  taken.clear();
  taken.insert(w.nbr_colors.begin(), w.nbr_colors.end());
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (taken.count(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (taken.count(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

template <typename Fn>
double time_ns_per_op(int iters, Fn&& fn) {
  // One untimed call warms caches and thread_local state.
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

int run(bool quick) {
  banner("KERNELS",
         "word-parallel PaletteSet vs sorted-vector scan vs std::set");
  Table table({"width", "palette ns", "sorted-vec ns", "std::set ns",
               "speedup vs sorted", "speedup vs set"});
  const int base_iters = quick ? 500 : 10000;
  bool all_match = true;
  for (const int width : {64, 256, 1024, 4096}) {
    // Iterations scale down with width so total work stays bounded.
    const int iters = std::max(base_iters * 64 / width, quick ? 25 : 500);
    PaletteSet palette;
    std::vector<Color> sorted_buf;
    std::set<Color> set_buf;
    std::vector<Workload> workloads;
    for (std::uint64_t s = 0; s < 8; ++s)
      workloads.push_back(make_workload(width, 1 + s));
    // Correctness gate: all three implementations agree on every workload.
    for (const Workload& w : workloads) {
      const auto a = step_palette(w, palette);
      const auto b = step_sorted_vec(w, sorted_buf);
      const auto c = step_std_set(w, set_buf);
      if (a != b || a != c) {
        std::cerr << "MISMATCH width=" << width << "\n";
        all_match = false;
      }
    }
    volatile Color sink = 0;
    const double ns_palette = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_palette(w, palette).first;
    });
    const double ns_sorted = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_sorted_vec(w, sorted_buf).first;
    });
    const double ns_set = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_std_set(w, set_buf).first;
    });
    (void)sink;
    table.row(width, ns_palette / 8, ns_sorted / 8, ns_set / 8,
              ns_sorted / ns_palette, ns_set / ns_palette);
    BenchJson("KERNELS")
        .field("width", width)
        .field("match", all_match)
        .field("palette_ns", ns_palette / 8)
        .field("sorted_vec_ns", ns_sorted / 8)
        .field("std_set_ns", ns_set / 8)
        .field("speedup_vs_sorted", ns_sorted / ns_palette)
        .field("speedup_vs_set", ns_set / ns_palette)
        .print();
  }
  table.print();
  if (!all_match) {
    std::cerr << "kernel implementations disagree — failing\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace deltacolor::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  return deltacolor::bench::run(quick);
}
