// Kernel microbench: the deg+1 inner loop (build the neighbor "taken" set,
// then pick a free color from the node's list) across three palette
// representations — the word-parallel PaletteSet, the sorted-vector +
// binary_search scan it replaced, and a std::set oracle — over palette
// widths {64, 256, 1024, 4096}. Every implementation is cross-checked
// against the oracle before timing, so a speedup reported here is a
// speedup on provably identical results.
//
// A second section (KERNELS_SIMD) times the dispatched PaletteSet word
// kernels at the scalar level vs the best level this host supports, per
// width. Before timing, both levels run a deterministic checksum pass over
// identical workloads; any divergence aborts the process — a speedup row
// only ever describes bit-identical results. Note widths below 512 colors
// sit under simd::kMinWords, where PaletteSet keeps its inlined scalar
// loops at every level, so those rows legitimately hover at 1.0x.
//
// Usage: bench_kernels [--quick]   (--quick cuts iteration counts ~20x for
// the CI perf-smoke job; the emitted BENCH_JSON schema is unchanged).

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_support/table.hpp"
#include "common/palette.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace deltacolor::bench {
namespace {

struct Workload {
  int width = 0;
  std::vector<Color> nbr_colors;  // colors held by the neighborhood (dupes)
  std::vector<Color> list;        // the node's allowed list, shuffled
  std::size_t draw = 0;           // raw randomness for the k-th-free pick
};

Workload make_workload(int width, std::uint64_t seed) {
  Workload w;
  w.width = width;
  std::uint64_t state = seed;
  auto next = [&]() { return state = hash_mix(state, 11, 13); };
  // Degree ~ width - 1 like a hard clique: the taken set is dense, which is
  // exactly the regime the coloring phases spend their rounds in.
  const int degree = width - 1;
  w.nbr_colors.reserve(static_cast<std::size_t>(degree));
  for (int i = 0; i < degree; ++i)
    w.nbr_colors.push_back(
        static_cast<Color>(next() % static_cast<unsigned>(width)));
  for (Color c = 0; c < width; ++c) w.list.push_back(c);
  // Deterministic shuffle — the list API must not assume sorted lists.
  for (std::size_t i = w.list.size(); i > 1; --i)
    std::swap(w.list[i - 1], w.list[next() % i]);
  w.draw = static_cast<std::size_t>(next());
  return w;
}

// --- The three implementations of one deg+1-style step: build the taken
// --- set, return {first free list color, k-th free list color}.

std::pair<Color, Color> step_palette(const Workload& w, PaletteSet& taken) {
  taken.reset(w.width);
  for (const Color c : w.nbr_colors) taken.insert(c);
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (taken.contains(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (taken.contains(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

std::pair<Color, Color> step_sorted_vec(const Workload& w,
                                        std::vector<Color>& taken) {
  taken.assign(w.nbr_colors.begin(), w.nbr_colors.end());
  std::sort(taken.begin(), taken.end());
  taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
  auto is_taken = [&](Color c) {
    return std::binary_search(taken.begin(), taken.end(), c);
  };
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (is_taken(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (is_taken(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

std::pair<Color, Color> step_std_set(const Workload& w,
                                     std::set<Color>& taken) {
  taken.clear();
  taken.insert(w.nbr_colors.begin(), w.nbr_colors.end());
  Color first = kNoColor;
  std::size_t free_count = 0;
  for (const Color c : w.list) {
    if (taken.count(c)) continue;
    if (first == kNoColor) first = c;
    ++free_count;
  }
  Color kth = kNoColor;
  if (free_count > 0) {
    std::size_t k = w.draw % free_count;
    for (const Color c : w.list) {
      if (taken.count(c)) continue;
      if (k-- == 0) {
        kth = c;
        break;
      }
    }
  }
  return {first, kth};
}

template <typename Fn>
double time_ns_per_op(int iters, Fn&& fn) {
  // One untimed call warms caches and thread_local state.
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(stop - start).count() /
         iters;
}

// --- KERNELS_SIMD: scalar vs best dispatch level on the palette word ops ---

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return (h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2))) *
         0x100000001b3ull;
}

struct SimdWorkload {
  PaletteSet free_set;   // every color in [0, width)
  PaletteSet taken_set;  // the neighborhood's colors
  PaletteSet reduced;    // free_set \ taken_set (remove_all is idempotent,
                         // so timing loops re-apply it in place)
  int nth_k = 0;
};

std::vector<SimdWorkload> make_simd_workloads(int width) {
  std::vector<SimdWorkload> out;
  for (std::uint64_t s = 0; s < 8; ++s) {
    const Workload w = make_workload(width, 101 + s);
    SimdWorkload sw;
    sw.free_set.reset(width);
    for (Color c = 0; c < width; ++c) sw.free_set.insert(c);
    sw.taken_set.reset(width);
    for (const Color c : w.nbr_colors) sw.taken_set.insert(c);
    sw.reduced = sw.free_set;
    sw.reduced.remove_all(sw.taken_set);
    const int cnt = sw.reduced.count();
    sw.nth_k = cnt > 0 ? static_cast<int>(w.draw %
                                          static_cast<std::size_t>(cnt))
                       : 0;
    out.push_back(std::move(sw));
  }
  return out;
}

/// Deterministic digest of every kernel's output over the workloads; must
/// be identical at every dispatch level or the bench aborts.
std::uint64_t simd_checksum(const std::vector<SimdWorkload>& wl) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const SimdWorkload& sw : wl) {
    PaletteSet tmp = sw.free_set;
    tmp.remove_all(sw.taken_set);
    h = mix64(h, static_cast<std::uint64_t>(tmp.count()));
    h = mix64(h, static_cast<std::uint64_t>(
                     sw.free_set.intersect_count(sw.taken_set)));
    h = mix64(h, static_cast<std::uint64_t>(tmp.first_free()));
    h = mix64(h, static_cast<std::uint64_t>(tmp.nth_free(sw.nth_k)));
    h = mix64(h, static_cast<std::uint64_t>(
                     tmp.sample_free(0x9e3779b97f4a7c15ull)));
  }
  return h;
}

struct SimdTimes {
  double remove_ns = 0;
  double count_ns = 0;
  double inter_ns = 0;
  double first_ns = 0;
  double nth_ns = 0;
};

SimdTimes time_simd_level(std::vector<SimdWorkload>& wl, int iters) {
  SimdTimes t;
  volatile int sink = 0;
  t.remove_ns = time_ns_per_op(iters, [&]() {
    for (SimdWorkload& sw : wl) sw.reduced.remove_all(sw.taken_set);
  });
  t.count_ns = time_ns_per_op(iters, [&]() {
    for (const SimdWorkload& sw : wl) sink = sw.reduced.count();
  });
  t.inter_ns = time_ns_per_op(iters, [&]() {
    for (const SimdWorkload& sw : wl)
      sink = sw.free_set.intersect_count(sw.taken_set);
  });
  t.first_ns = time_ns_per_op(iters, [&]() {
    for (const SimdWorkload& sw : wl) sink = sw.reduced.first_free();
  });
  t.nth_ns = time_ns_per_op(iters, [&]() {
    for (const SimdWorkload& sw : wl) sink = sw.reduced.nth_free(sw.nth_k);
  });
  (void)sink;
  return t;
}

int run_simd_section(bool quick) {
  const simd::Level best = simd::best_level();
  banner("KERNELS_SIMD",
         std::string("PaletteSet word kernels: scalar vs ") +
             simd::to_string(best) + " dispatch (bit-identical, enforced)");
  Table table({"width", "op", "scalar ns", "simd ns", "speedup"});
  const int base_iters = quick ? 500 : 20000;
  for (const int width : {64, 256, 512, 1024, 4096}) {
    const int iters = std::max(base_iters * 64 / width, quick ? 25 : 500);
    std::vector<SimdWorkload> wl = make_simd_workloads(width);

    simd::force_level(simd::Level::kScalar);
    const std::uint64_t sum_scalar = simd_checksum(wl);
    const SimdTimes scalar = time_simd_level(wl, iters);

    simd::force_level(best);
    const std::uint64_t sum_simd = simd_checksum(wl);
    const SimdTimes vec = time_simd_level(wl, iters);
    simd::reset_level();

    if (sum_scalar != sum_simd) {
      std::cerr << "KERNELS_SIMD MISMATCH width=" << width << " scalar=0x"
                << std::hex << sum_scalar << " " << simd::to_string(best)
                << "=0x" << sum_simd << std::dec
                << " — SIMD diverges from the scalar reference, aborting\n";
      std::abort();
    }
    std::cout << "KERNELS_STATE width=" << width << " checksum=0x"
              << std::hex << sum_scalar << std::dec << "\n";

    const struct {
      const char* name;
      double SimdTimes::*field;
    } ops[] = {{"remove_all", &SimdTimes::remove_ns},
               {"count", &SimdTimes::count_ns},
               {"intersect_count", &SimdTimes::inter_ns},
               {"first_free", &SimdTimes::first_ns},
               {"nth_free", &SimdTimes::nth_ns}};
    BenchJson json("KERNELS_SIMD");
    json.field("width", width)
        .field("level", simd::to_string(best))
        .field("checksum_match", true);
    for (const auto& op : ops) {
      const double s = scalar.*(op.field) / 8;
      const double v = vec.*(op.field) / 8;
      table.row(width, op.name, s, v, s / v);
      json.field(std::string(op.name) + "_scalar_ns", s)
          .field(std::string(op.name) + "_simd_ns", v)
          .field(std::string(op.name) + "_speedup", s / v);
    }
    json.print();
  }
  table.print();
  return 0;
}

int run(bool quick) {
  banner("KERNELS",
         "word-parallel PaletteSet vs sorted-vector scan vs std::set");
  Table table({"width", "palette ns", "sorted-vec ns", "std::set ns",
               "speedup vs sorted", "speedup vs set"});
  const int base_iters = quick ? 500 : 10000;
  bool all_match = true;
  for (const int width : {64, 256, 512, 1024, 4096}) {
    // Iterations scale down with width so total work stays bounded.
    const int iters = std::max(base_iters * 64 / width, quick ? 25 : 500);
    PaletteSet palette;
    std::vector<Color> sorted_buf;
    std::set<Color> set_buf;
    std::vector<Workload> workloads;
    for (std::uint64_t s = 0; s < 8; ++s)
      workloads.push_back(make_workload(width, 1 + s));
    // Correctness gate: all three implementations agree on every workload.
    for (const Workload& w : workloads) {
      const auto a = step_palette(w, palette);
      const auto b = step_sorted_vec(w, sorted_buf);
      const auto c = step_std_set(w, set_buf);
      if (a != b || a != c) {
        std::cerr << "MISMATCH width=" << width << "\n";
        all_match = false;
      }
    }
    volatile Color sink = 0;
    const double ns_palette = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_palette(w, palette).first;
    });
    const double ns_sorted = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_sorted_vec(w, sorted_buf).first;
    });
    const double ns_set = time_ns_per_op(iters, [&]() {
      for (const Workload& w : workloads)
        sink = step_std_set(w, set_buf).first;
    });
    (void)sink;
    table.row(width, ns_palette / 8, ns_sorted / 8, ns_set / 8,
              ns_sorted / ns_palette, ns_set / ns_palette);
    BenchJson("KERNELS")
        .field("width", width)
        .field("match", all_match)
        .field("palette_ns", ns_palette / 8)
        .field("sorted_vec_ns", ns_sorted / 8)
        .field("std_set_ns", ns_set / 8)
        .field("speedup_vs_sorted", ns_sorted / ns_palette)
        .field("speedup_vs_set", ns_set / ns_palette)
        .print();
  }
  table.print();
  if (!all_match) {
    std::cerr << "kernel implementations disagree — failing\n";
    return 1;
  }
  return run_simd_section(quick);
}

}  // namespace
}  // namespace deltacolor::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  return deltacolor::bench::run(quick);
}
