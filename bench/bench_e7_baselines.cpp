// E7 — the complexity-landscape comparison motivating the paper (Figure 1
// and Section 1.1): Delta-coloring vs the greedy (Delta+1) regime vs the
// prior layered approach vs the centralized ground truth.
//
//  * greedy uses one extra color and finishes in log*-tier rounds;
//  * the layered baseline needs loopholes: it STALLS on hard instances
//    and needs ~diameter rounds on ring-shaped easy instances;
//  * the paper's deterministic algorithm handles hard instances in
//    O(log n)-tier rounds with exactly Delta colors;
//  * the randomized algorithm does the same in fewer n-dependent rounds;
//  * Brooks (centralized) is the sequential reference.
//
// Every algorithm row is one SweepDriver cell; all five share the cached
// instance, so the blow-up / ring is generated once per kind instead of
// once per algorithm.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void run_tables() {
  banner("E7", "head-to-head: who colors what, with how many colors, in "
               "how many rounds");

  const char* algorithms[] = {"greedy", "layered", "deterministic",
                              "randomized", "brooks"};
  constexpr std::size_t kAlgorithms = 5;

  struct Cell {
    const char* kind;
    std::size_t algorithm;
  };
  std::vector<Cell> cells;
  for (const char* kind : {"hard", "ring"})
    for (std::size_t a = 0; a < kAlgorithms; ++a) cells.push_back({kind, a});

  struct Row {
    std::string label;
    int colors = 0;
    bool has_rounds = true;
    double ms = 0;
    std::string outcome;
    bool ok = false;
    NodeId n = 0;
    RoundLedger ledger;
  };
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<Row>(cells.size(), [&](std::size_t i,
                                                      CellContext& ctx) {
    const Cell& c = cells[i];
    const bool hard = std::string(c.kind) == "hard";
    const int delta = hard ? 16 : 8;
    const auto inst = hard ? cached_hard(128, delta, 17, &ctx.ledger())
                           : cached_ring(128, delta, 17, &ctx.ledger());
    const Graph& g = inst->graph;
    Row row;
    row.n = g.num_nodes();
    switch (c.algorithm) {
      case 0: {  // greedy Delta+1
        const auto t0 = std::chrono::steady_clock::now();
        const auto color = greedy_delta_plus_one(g, row.ledger);
        row.ms = ms_since(t0);
        row.ok = is_proper_coloring(g, color, delta + 1);
        row.label = "greedy (Delta+1)";
        row.colors = check_coloring(g, color).colors_used;
        row.outcome = row.ok ? "valid (Delta+1)" : "INVALID";
        break;
      }
      case 1: {  // layered baseline
        AcdParams p;
        p.epsilon = std::max(kAcdEpsilon, 2.5 / delta);
        RoundLedger tmp;
        const Acd acd = compute_acd(g, tmp, p);
        const auto lps = find_loopholes_dense(g, acd, tmp);
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = layered_loophole_coloring(g, lps, row.ledger);
        row.ms = ms_since(t0);
        row.ok = res.success;
        row.label = "layered (prior-style)";
        row.colors =
            res.success ? check_coloring(g, res.color).colors_used : 0;
        row.outcome =
            res.success ? "valid (Delta)" : "STALLS (no loopholes)";
        break;
      }
      case 2: {  // deterministic (Theorem 1)
        auto opt = scaled_options(delta);
        opt.engine = ctx.engine();
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = delta_color_dense(g, opt);
        row.ms = ms_since(t0);
        row.ok = res.valid;
        row.label = "deterministic (Thm 1)";
        row.colors = check_coloring(g, res.color).colors_used;
        row.outcome = res.valid ? "valid (Delta)" : "INVALID";
        row.ledger = res.ledger;
        break;
      }
      case 3: {  // randomized (Theorem 2)
        auto opt = scaled_randomized_options(delta, 7);
        opt.engine = ctx.engine();
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = randomized_delta_color(g, opt);
        row.ms = ms_since(t0);
        row.ok = res.valid;
        row.label = "randomized (Thm 2)";
        row.colors = check_coloring(g, res.color).colors_used;
        row.outcome = res.valid ? "valid (Delta)" : "INVALID";
        row.ledger = res.ledger;
        break;
      }
      case 4: {  // Brooks, centralized
        const auto t0 = std::chrono::steady_clock::now();
        const auto res = brooks_coloring(g);
        row.ms = ms_since(t0);
        row.ok = res.success;
        row.has_rounds = false;
        row.label = "Brooks (centralized)";
        row.colors =
            res.success ? check_coloring(g, res.color).colors_used : 0;
        row.outcome = res.success ? "valid (Delta)" : "exception";
        break;
      }
    }
    return row;
  });

  std::size_t at = 0;
  for (const char* kind : {"hard", "ring"}) {
    const bool hard = std::string(kind) == "hard";
    const int delta = hard ? 16 : 8;
    Table t({"algorithm", "colors", "rounds", "wall(ms)", "outcome"});
    NodeId n = 0;
    for (std::size_t a = 0; a < kAlgorithms; ++a, ++at) {
      const Row& row = rows[at];
      n = row.n;
      if (row.has_rounds)
        t.row(row.label, row.colors, row.ledger.total(), row.ms,
              row.outcome);
      else
        t.row(row.label, row.colors, "-", row.ms, row.outcome);
      if (cells[at].algorithm != 4)  // Brooks has no LOCAL rounds to emit
        BenchJson("E7")
            .field("instance", kind)
            .field("n", row.n)
            .field("algorithm", algorithms[a])
            .field("valid", row.ok)
            .field("wall_ms", row.ms)
            .ledger(row.ledger)
            .print();
    }
    std::cout << (hard ? "All-hard blow-up instance" : "Easy clique ring")
              << " (n = " << n << ", Delta = " << delta << "):\n";
    t.print();
    std::cout << "\n";
  }
  std::cout << driver.report() << "\n";

  // Engine configurations head-to-head on the same protocol: the round
  // engine's sparse-activation mode against full sweeps, on the message-
  // passing color-trial workload (the engine's hot path). Serial on
  // purpose — this section measures engine wall-clock, so cells must not
  // share the machine.
  banner("E7b", "round engine configurations (color trials, hard blow-up)");
  {
    const auto inst = cached_hard(512, 16, 17);
    const Graph& g = inst->graph;
    Table t({"engine", "rounds", "wall(ms)", "valid"});
    const std::pair<const char*, EngineOptions> configs[] = {
        {"full-sweep serial", {1, false}},
        {"frontier serial", {1, true}},
        {"frontier 4 workers", {4, true}},
    };
    for (const auto& [name, opts] : configs) {
      RoundLedger ledger;
      const auto t0 = std::chrono::steady_clock::now();
      const auto color =
          color_trial_message_passing(g, 17, ledger, "trial", opts);
      const double ms = ms_since(t0);
      const bool ok = is_proper_coloring(g, color, g.max_degree() + 1);
      t.row(name, ledger.total(), ms, ok ? "yes" : "NO");
      BenchJson("E7")
          .field("instance", "hard")
          .field("n", g.num_nodes())
          .field("algorithm", std::string("color-trial-mp ") + name)
          .field("valid", ok)
          .field("wall_ms", ms)
          .ledger(ledger)
          .print();
    }
    t.print();
  }
}

void BM_Greedy(benchmark::State& state) {
  const auto inst = cached_hard(128, 16, 17);
  for (auto _ : state) {
    RoundLedger ledger;
    benchmark::DoNotOptimize(
        greedy_delta_plus_one(inst->graph, ledger).data());
  }
}
BENCHMARK(BM_Greedy)->Unit(benchmark::kMillisecond);

void BM_Deterministic(benchmark::State& state) {
  const auto inst = cached_hard(128, 16, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta_color_dense(inst->graph, scaled_options(16)).color.data());
  }
}
BENCHMARK(BM_Deterministic)->Unit(benchmark::kMillisecond);

void BM_Randomized(benchmark::State& state) {
  const auto inst = cached_hard(128, 16, 17);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        randomized_delta_color(inst->graph,
                               scaled_randomized_options(16, ++seed))
            .color.data());
  }
}
BENCHMARK(BM_Randomized)->Unit(benchmark::kMillisecond);

void BM_Brooks(benchmark::State& state) {
  const auto inst = cached_hard(128, 16, 17);
  for (auto _ : state)
    benchmark::DoNotOptimize(brooks_coloring(inst->graph).color.data());
}
BENCHMARK(BM_Brooks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
