// E7 — the complexity-landscape comparison motivating the paper (Figure 1
// and Section 1.1): Delta-coloring vs the greedy (Delta+1) regime vs the
// prior layered approach vs the centralized ground truth.
//
//  * greedy uses one extra color and finishes in log*-tier rounds;
//  * the layered baseline needs loopholes: it STALLS on hard instances
//    and needs ~diameter rounds on ring-shaped easy instances;
//  * the paper's deterministic algorithm handles hard instances in
//    O(log n)-tier rounds with exactly Delta colors;
//  * the randomized algorithm does the same in fewer n-dependent rounds;
//  * Brooks (centralized) is the sequential reference.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void run_tables() {
  banner("E7", "head-to-head: who colors what, with how many colors, in "
               "how many rounds");

  for (const char* kind : {"hard", "ring"}) {
    const bool hard = std::string(kind) == "hard";
    Table t({"algorithm", "colors", "rounds", "wall(ms)", "outcome"});
    const int delta = hard ? 16 : 8;
    CliqueInstance inst =
        hard ? hard_instance(128, delta, 17) : clique_ring(128, delta, 17);
    const Graph& g = inst.graph;

    auto emit = [&](const char* algorithm, const RoundLedger& ledger,
                    double ms, bool ok) {
      BenchJson("E7")
          .field("instance", kind)
          .field("n", g.num_nodes())
          .field("algorithm", algorithm)
          .field("valid", ok)
          .field("wall_ms", ms)
          .ledger(ledger)
          .print();
    };
    {  // greedy Delta+1
      RoundLedger ledger;
      const auto t0 = std::chrono::steady_clock::now();
      const auto color = greedy_delta_plus_one(g, ledger);
      const double ms = ms_since(t0);
      const bool ok = is_proper_coloring(g, color, delta + 1);
      t.row("greedy (Delta+1)", check_coloring(g, color).colors_used,
            ledger.total(), ms, ok ? "valid (Delta+1)" : "INVALID");
      emit("greedy", ledger, ms, ok);
    }
    {  // layered baseline
      RoundLedger ledger;
      AcdParams p;
      p.epsilon = std::max(kAcdEpsilon, 2.5 / delta);
      RoundLedger tmp;
      const Acd acd = compute_acd(g, tmp, p);
      const auto lps = find_loopholes_dense(g, acd, tmp);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = layered_loophole_coloring(g, lps, ledger);
      const double ms = ms_since(t0);
      t.row("layered (prior-style)",
            res.success ? check_coloring(g, res.color).colors_used : 0,
            ledger.total(), ms,
            res.success ? "valid (Delta)" : "STALLS (no loopholes)");
      emit("layered", ledger, ms, res.success);
    }
    {  // deterministic (Theorem 1)
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = delta_color_dense(g, scaled_options(delta));
      const double ms = ms_since(t0);
      t.row("deterministic (Thm 1)",
            check_coloring(g, res.color).colors_used, res.ledger.total(),
            ms, res.valid ? "valid (Delta)" : "INVALID");
      emit("deterministic", res.ledger, ms, res.valid);
    }
    {  // randomized (Theorem 2)
      const auto t0 = std::chrono::steady_clock::now();
      const auto res =
          randomized_delta_color(g, scaled_randomized_options(delta, 7));
      const double ms = ms_since(t0);
      t.row("randomized (Thm 2)", check_coloring(g, res.color).colors_used,
            res.ledger.total(), ms, res.valid ? "valid (Delta)" : "INVALID");
      emit("randomized", res.ledger, ms, res.valid);
    }
    {  // Brooks, centralized
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = brooks_coloring(g);
      const double ms = ms_since(t0);
      t.row("Brooks (centralized)",
            res.success ? check_coloring(g, res.color).colors_used : 0,
            "-", ms, res.success ? "valid (Delta)" : "exception");
    }
    std::cout << (hard ? "All-hard blow-up instance" : "Easy clique ring")
              << " (n = " << g.num_nodes() << ", Delta = " << delta
              << "):\n";
    t.print();
    std::cout << "\n";
  }

  // Engine configurations head-to-head on the same protocol: the round
  // engine's sparse-activation mode against full sweeps, on the message-
  // passing color-trial workload (the engine's hot path).
  banner("E7b", "round engine configurations (color trials, hard blow-up)");
  {
    const CliqueInstance inst = hard_instance(512, 16, 17);
    const Graph& g = inst.graph;
    Table t({"engine", "rounds", "wall(ms)", "valid"});
    const std::pair<const char*, EngineOptions> configs[] = {
        {"full-sweep serial", {1, false}},
        {"frontier serial", {1, true}},
        {"frontier 4 workers", {4, true}},
    };
    for (const auto& [name, opts] : configs) {
      RoundLedger ledger;
      const auto t0 = std::chrono::steady_clock::now();
      const auto color =
          color_trial_message_passing(g, 17, ledger, "trial", opts);
      const double ms = ms_since(t0);
      const bool ok = is_proper_coloring(g, color, g.max_degree() + 1);
      t.row(name, ledger.total(), ms, ok ? "yes" : "NO");
      BenchJson("E7")
          .field("instance", "hard")
          .field("n", g.num_nodes())
          .field("algorithm", std::string("color-trial-mp ") + name)
          .field("valid", ok)
          .field("wall_ms", ms)
          .ledger(ledger)
          .print();
    }
    t.print();
  }
}

void BM_Greedy(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(128, 16, 17);
  for (auto _ : state) {
    RoundLedger ledger;
    benchmark::DoNotOptimize(
        greedy_delta_plus_one(inst.graph, ledger).data());
  }
}
BENCHMARK(BM_Greedy)->Unit(benchmark::kMillisecond);

void BM_Deterministic(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(128, 16, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta_color_dense(inst.graph, scaled_options(16)).color.data());
  }
}
BENCHMARK(BM_Deterministic)->Unit(benchmark::kMillisecond);

void BM_Randomized(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(128, 16, 17);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        randomized_delta_color(inst.graph,
                               scaled_randomized_options(16, ++seed))
            .color.data());
  }
}
BENCHMARK(BM_Randomized)->Unit(benchmark::kMillisecond);

void BM_Brooks(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(128, 16, 17);
  for (auto _ : state)
    benchmark::DoNotOptimize(brooks_coloring(inst.graph).color.data());
}
BENCHMARK(BM_Brooks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
