// E9 — Lemma 21 / Corollary 22: degree splitting into 2^i parts keeps each
// node's per-part degree within deg/2^i +- (eps * deg + a).
//
// Sweep the segment length (~1/eps') and the recursion depth i on random
// regular graphs; report the worst observed per-node discrepancy against
// the bound and the simulated rounds.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E9", "Corollary 22: per-node degree discrepancy of the splitter");
  Table t({"degree", "levels", "segment", "rounds", "maxDisc",
           "bound(eps*d+a)", "within"});
  for (const int degree : {16, 32, 64}) {
    Graph g = random_regular(2048, degree, 7 + degree);
    for (const int levels : {1, 2, 3}) {
      for (const int segment : {16, 64, 100, 256}) {
        RoundLedger ledger;
        const auto split = degree_split(g, levels, segment, 3, ledger);
        double max_disc = 0;
        for (int p = 0; p < split.num_parts; ++p) {
          const auto deg = part_degrees(g, split, p);
          for (NodeId v = 0; v < g.num_nodes(); ++v)
            max_disc = std::max(
                max_disc, std::abs(deg[v] - static_cast<double>(degree) /
                                                split.num_parts));
        }
        const double bound =
            (2.0 * levels / segment) * degree + 3.0 * levels + 1;
        t.row(degree, levels, segment, split.rounds, max_disc, bound,
              verdict(max_disc <= bound + 1e-9));
      }
    }
  }
  t.print();
  std::cout << "\n(The paper instantiates eps' = 1/100, i = 2 in Lemma 13;\n"
               "segment = 100, levels = 2 is that configuration.)\n";
}

void BM_DegreeSplit(benchmark::State& state) {
  Graph g = random_regular(4096, 32, 11);
  for (auto _ : state) {
    RoundLedger ledger;
    const auto split = degree_split(g, 2, 100, 5, ledger);
    benchmark::DoNotOptimize(split.part.data());
  }
}
BENCHMARK(BM_DegreeSplit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
