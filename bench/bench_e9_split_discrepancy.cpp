// E9 — Lemma 21 / Corollary 22: degree splitting into 2^i parts keeps each
// node's per-part degree within deg/2^i +- (eps * deg + a).
//
// Sweep the segment length (~1/eps') and the recursion depth i on random
// regular graphs; report the worst observed per-node discrepancy against
// the bound and the simulated rounds.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E9", "Corollary 22: per-node degree discrepancy of the splitter");

  struct Cell {
    int degree;
    int levels;
    int segment;
  };
  std::vector<Cell> cells;
  for (const int degree : {16, 32, 64})
    for (const int levels : {1, 2, 3})
      for (const int segment : {16, 64, 100, 256})
        cells.push_back({degree, levels, segment});

  struct Row {
    int rounds = 0;
    double max_disc = 0;
  };
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<Row>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto g =
            cached_regular(2048, c.degree, 7 + c.degree, &ctx.ledger());
        RoundLedger ledger;
        const auto split = degree_split(*g, c.levels, c.segment, 3, ledger);
        Row row;
        row.rounds = split.rounds;
        for (int p = 0; p < split.num_parts; ++p) {
          const auto deg = part_degrees(*g, split, p);
          for (NodeId v = 0; v < g->num_nodes(); ++v)
            row.max_disc = std::max(
                row.max_disc,
                std::abs(deg[v] - static_cast<double>(c.degree) /
                                      split.num_parts));
        }
        return row;
      });

  Table t({"degree", "levels", "segment", "rounds", "maxDisc",
           "bound(eps*d+a)", "within"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const double bound =
        (2.0 * c.levels / c.segment) * c.degree + 3.0 * c.levels + 1;
    t.row(c.degree, c.levels, c.segment, rows[i].rounds, rows[i].max_disc,
          bound, verdict(rows[i].max_disc <= bound + 1e-9));
  }
  t.print();
  std::cout << "\n(The paper instantiates eps' = 1/100, i = 2 in Lemma 13;\n"
               "segment = 100, levels = 2 is that configuration.)\n";
  std::cout << driver.report() << "\n";
}

void BM_DegreeSplit(benchmark::State& state) {
  const auto g = cached_regular(4096, 32, 11);
  for (auto _ : state) {
    RoundLedger ledger;
    const auto split = degree_split(*g, 2, 100, 5, ledger);
    benchmark::DoNotOptimize(split.part.data());
  }
}
BENCHMARK(BM_DegreeSplit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
