// E5 — Lemmas 15 and 16 (and Figures 2/3): the slack triads are vertex
// disjoint, each clique holds at most (Delta - 2*eps*Delta - 1)/2 + 1
// slack pair vertices, and the virtual conflict graph G_V over slack pairs
// has maximum degree at most Delta - 2 (so same-coloring the pairs is a
// deg+1-list instance).
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E5", "Lemmas 15/16: slack triads and the virtual graph G_V");

  struct Cell {
    int delta;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const int delta : {16, 32, 63})
    for (const std::uint64_t seed : {1ull, 2ull, 3ull})
      cells.push_back({delta, seed});

  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto inst = cached_hard(48, c.delta, c.seed, &ctx.ledger());
        auto opt = scaled_options(c.delta);
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });

  Table t({"Delta", "cliques", "seed", "triads", "dropped",
           "maxPairs/clique", "pairBound", "deg(G_V)", "Delta-2", "lemma16"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const auto& res = rows[i];
    const auto& st = res.hard_stats;
    const auto opt = scaled_options(c.delta);
    const double pair_bound =
        0.5 * (c.delta - 2 * opt.acd.epsilon * c.delta - 1) + 1;
    t.row(c.delta, res.num_cliques, c.seed, st.num_triads,
          st.dropped_triads, st.max_slack_pairs_per_clique, pair_bound,
          st.max_gv_degree, c.delta - 2, verdict(st.lemma16_ok));
  }
  t.print();
  std::cout << "\n(Figure 2/3 reproduction: every Type I+ clique ends up\n"
               "with one triad; pairs form the virtual graph G_V whose\n"
               "degree bound makes Phase 4A a deg+1-list instance.)\n";
  std::cout << driver.report() << "\n";
}

void BM_TriadFormation(benchmark::State& state) {
  const auto inst = cached_hard(128, 16, 6);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst->graph, scaled_options(16));
    benchmark::DoNotOptimize(res.hard_stats.num_triads);
  }
}
BENCHMARK(BM_TriadFormation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
