// E10 — Section 1.1's intuition: finding slack triads in the "extremely
// dense" case reduces to sinkless orientation, whose distributed
// complexity is Theta(log n) [BFH+16].
//
// Sinkless orientation == rank-2 hyperedge grabbing: every vertex grabs
// (orients outward) one incident edge, no edge is grabbed twice. Sweep n
// on random 3-regular graphs and on the cross-edge structure of clique
// blow-ups; the solver's rounds exhibit the log n shape.
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

Hypergraph edges_as_hypergraph(const Graph& g) {
  Hypergraph h;
  h.num_vertices = static_cast<int>(g.num_nodes());
  for (const auto& [u, v] : g.edges())
    h.edges.push_back({static_cast<int>(u), static_cast<int>(v)});
  h.build_incidence();
  return h;
}

void run_tables() {
  banner("E10", "sinkless orientation (rank-2 HEG) is Theta(log n)-shaped");

  struct Row {
    int vertices = 0;
    int min_degree = 0;
    int rounds = 0;
    bool ok = false;
  };
  {
    std::vector<int> n_grid;
    for (int n = 256; n <= 16384; n *= 4) n_grid.push_back(n);
    SweepDriver driver(sweep_options_from_env());
    const auto rows = driver.run<Row>(
        n_grid.size(), [&](std::size_t i, CellContext& ctx) {
          const int n = n_grid[i];
          const auto g = cached_regular(n, 3, 7 + n, &ctx.ledger());
          const Hypergraph h = edges_as_hypergraph(*g);
          RoundLedger ledger;
          const HegResult res = solve_heg(h, ledger);
          Row row;
          row.rounds = res.rounds;
          row.ok = res.complete && is_valid_heg(h, res);
          return row;
        });
    Table t({"n", "degree", "rounds", "valid"});
    std::vector<double> ns, rounds;
    for (std::size_t i = 0; i < n_grid.size(); ++i) {
      t.row(n_grid[i], 3, rows[i].rounds, rows[i].ok ? "yes" : "NO");
      ns.push_back(n_grid[i]);
      rounds.push_back(rows[i].rounds);
    }
    std::cout << "random 3-regular graphs:\n";
    t.print();
    const LinearFit fit = fit_log(ns, rounds);
    std::cout << "fit rounds ~ " << fit.intercept << " + " << fit.slope
              << " * log2(n)   (r2 = " << fit.r2 << ")\n\n";
  }
  {
    // The paper's virtual construction: one vertex per clique *half*,
    // oriented intra-clique edges give each half >= 3 candidate edges.
    // We emulate it on the clique-contraction multigraph of blow-ups.
    const std::vector<int> clique_grid = {64, 256, 1024};
    SweepDriver driver(sweep_options_from_env());
    const auto rows = driver.run<Row>(
        clique_grid.size(), [&](std::size_t i, CellContext& ctx) {
          const auto inst =
              cached_hard(clique_grid[i], 8, 3, &ctx.ledger());
          // Contract cliques: vertices = cliques, edges = cross edges.
          Hypergraph h;
          h.num_vertices = static_cast<int>(inst->cliques.size());
          for (const auto& [u, v] : inst->graph.edges()) {
            const int cu = inst->clique_of[u], cv = inst->clique_of[v];
            if (cu != cv) h.edges.push_back({cu, cv});
          }
          h.build_incidence();
          RoundLedger ledger;
          const HegResult res = solve_heg(h, ledger);
          Row row;
          row.vertices = static_cast<int>(inst->cliques.size());
          row.min_degree = h.min_degree();
          row.rounds = res.rounds;
          row.ok = res.complete && is_valid_heg(h, res);
          return row;
        });
    Table t({"cliques", "super-degree", "rounds", "valid"});
    for (const Row& row : rows)
      t.row(row.vertices, row.min_degree, row.rounds,
            row.ok ? "yes" : "NO");
    std::cout << "clique-contraction of blow-up instances (each clique "
                 "grabs an outgoing cross edge):\n";
    t.print();
  }
}

void BM_SinklessOrientation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = cached_regular(n, 3, 11);
  const Hypergraph h = edges_as_hypergraph(*g);
  for (auto _ : state) {
    RoundLedger ledger;
    benchmark::DoNotOptimize(solve_heg(h, ledger).grabbed_edge.data());
  }
}
BENCHMARK(BM_SinklessOrientation)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
