// E10 — Section 1.1's intuition: finding slack triads in the "extremely
// dense" case reduces to sinkless orientation, whose distributed
// complexity is Theta(log n) [BFH+16].
//
// Sinkless orientation == rank-2 hyperedge grabbing: every vertex grabs
// (orients outward) one incident edge, no edge is grabbed twice. Sweep n
// on random 3-regular graphs and on the cross-edge structure of clique
// blow-ups; the solver's rounds exhibit the log n shape.
#include <benchmark/benchmark.h>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

Hypergraph edges_as_hypergraph(const Graph& g) {
  Hypergraph h;
  h.num_vertices = static_cast<int>(g.num_nodes());
  for (const auto& [u, v] : g.edges())
    h.edges.push_back({static_cast<int>(u), static_cast<int>(v)});
  h.build_incidence();
  return h;
}

void run_tables() {
  banner("E10", "sinkless orientation (rank-2 HEG) is Theta(log n)-shaped");
  {
    Table t({"n", "degree", "rounds", "valid"});
    std::vector<double> ns, rounds;
    for (int n = 256; n <= 16384; n *= 4) {
      const Graph g = random_regular(n, 3, 7 + n);
      const Hypergraph h = edges_as_hypergraph(g);
      RoundLedger ledger;
      const HegResult res = solve_heg(h, ledger);
      t.row(n, 3, res.rounds,
            res.complete && is_valid_heg(h, res) ? "yes" : "NO");
      ns.push_back(n);
      rounds.push_back(res.rounds);
    }
    std::cout << "random 3-regular graphs:\n";
    t.print();
    const LinearFit fit = fit_log(ns, rounds);
    std::cout << "fit rounds ~ " << fit.intercept << " + " << fit.slope
              << " * log2(n)   (r2 = " << fit.r2 << ")\n\n";
  }
  {
    // The paper's virtual construction: one vertex per clique *half*,
    // oriented intra-clique edges give each half >= 3 candidate edges.
    // We emulate it on the clique-contraction multigraph of blow-ups.
    Table t({"cliques", "super-degree", "rounds", "valid"});
    for (const int cliques : {64, 256, 1024}) {
      const CliqueInstance inst = hard_instance(cliques, 8, 3);
      // Contract cliques: vertices = cliques, edges = cross edges.
      Hypergraph h;
      h.num_vertices = static_cast<int>(inst.cliques.size());
      for (const auto& [u, v] : inst.graph.edges()) {
        const int cu = inst.clique_of[u], cv = inst.clique_of[v];
        if (cu != cv) h.edges.push_back({cu, cv});
      }
      h.build_incidence();
      RoundLedger ledger;
      const HegResult res = solve_heg(h, ledger);
      t.row(static_cast<int>(inst.cliques.size()), h.min_degree(),
            res.rounds, res.complete && is_valid_heg(h, res) ? "yes" : "NO");
    }
    std::cout << "clique-contraction of blow-up instances (each clique "
                 "grabs an outgoing cross edge):\n";
    t.print();
  }
}

void BM_SinklessOrientation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = random_regular(n, 3, 11);
  const Hypergraph h = edges_as_hypergraph(g);
  for (auto _ : state) {
    RoundLedger ledger;
    benchmark::DoNotOptimize(solve_heg(h, ledger).grabbed_edge.data());
  }
}
BENCHMARK(BM_SinklessOrientation)->Arg(1024)->Arg(8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
