// E3 — Lemma 11: the HEG instance built in Phase 1 has min-degree delta_H
// exceeding 1.1 * rank r_H.
//
// Measured across instance families, Delta values and seeds. Reproduction
// finding (see EXPERIMENTS.md): the paper's stated margin fails integer
// rounding at Delta = 63 with K = 28 (delta_H = floor(63/28) = 2 = r_H);
// it holds once sub-cliques carry >= 3 members — either via larger Delta
// (>= ~150 with K = 28) or via the scaled K used by default here.
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E3", "Lemma 11: delta_H > 1.1 * r_H for the Phase-1 HEG instance");

  struct Cell {
    int delta;
    std::uint64_t seed;
    bool paper_k;
  };
  std::vector<Cell> cells;
  for (const int delta : {16, 32, 63})
    for (const std::uint64_t seed : {1ull, 2ull, 3ull})
      for (const bool paper_k : {false, true}) {
        if (paper_k && delta < 56) continue;  // K = 28 needs |C| >= 56
        cells.push_back({delta, seed, paper_k});
      }

  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto inst = cached_hard(48, c.delta, c.seed, &ctx.ledger());
        DeltaColoringOptions opt = scaled_options(c.delta);
        if (c.paper_k) {
          opt = DeltaColoringOptions{};
          opt.hard.scale_for_delta = false;
        }
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });

  Table t({"Delta", "K(eff policy)", "seed", "heg_cliques", "delta_H", "r_H",
           "ratio", "lemma11", "heg_complete"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const auto& st = rows[i].hard_stats;
    t.row(c.delta, c.paper_k ? "paper K=28" : "scaled |Q|>=3", c.seed,
          st.num_heg_cliques, st.heg_min_degree, st.heg_rank, st.heg_ratio,
          verdict(st.lemma11_ok), st.heg_complete ? "yes" : "NO");
  }
  t.print();
  std::cout << "\nNote: ratio 1.0 rows are the documented integer-rounding\n"
               "gap in Lemma 11's stated margin; the HEG instance remains\n"
               "feasible (heg_complete) and the pipeline succeeds.\n";
  std::cout << driver.report() << "\n";
}

void BM_PipelinePhase1(benchmark::State& state) {
  const auto inst = cached_hard(64, 16, 9);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst->graph, scaled_options(16));
    benchmark::DoNotOptimize(res.hard_stats.heg_ratio);
  }
}
BENCHMARK(BM_PipelinePhase1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
