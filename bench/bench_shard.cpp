// bench_shard — stage-dispatch and round-barrier microbenchmark for the
// persistent shard worker pool (local/shard_runner.hpp).
//
// A pipeline of many short stages is the worst case for fork-per-stage
// execution: the fork + exec-free warmup dominates the microseconds of
// actual stepping. The persistent pool forks once per prepared graph and
// dispatches every subsequent stage to the live workers over the control
// socketpairs, with all node state and halo records moving through the
// shared-memory plane. On top of that PR 9 replaced the per-round
// coordinator BARRIER/STEP frame round-trip with a peer-to-peer
// shared-memory epoch barrier, so this bench drives the same N-stage
// pipeline through
//   (a) the in-process oracle (backend = nullptr),
//   (b) ProcShardedBackend(shards, persistent=false) — fork per stage,
//   (c) ProcShardedBackend(shards, true, kFrames)    — PR 8 frame barrier,
//   (d) ProcShardedBackend(shards, true, kShm)       — shm epoch barrier,
// asserts the final states of all four are bit-identical, and reports
// per-stage wall clock, forks, control-frame counts (the per-round syscall
// proxy: frames pays 2 frames/shard/round, shm pays zero), and the
// barrier-wait / halo-publish percentiles as BENCH_JSON records. The
// frames-vs-shm pair is the A/B for the barrier win.
//
// A final recovery A/B re-runs the shm pipeline with one injected
// mid-stage worker SIGKILL: the pool respawns the dead worker and replays
// the stage, the result is asserted bit-identical to the clean run, and
// the replay overhead (extra wall clock + discarded rounds) is reported as
// its own BENCH_JSON record.
//
// Usage: bench_shard [--quick]   (--quick cuts stages/instance size ~4x)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/table.hpp"
#include "deltacolor.hpp"
#include "local/faults.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

// One stage = `rounds_per_stage` engine rounds of neighborhood-max gossip
// with a round-salted perturbation: every node changes every round, so
// each round publishes the full changed-boundary record set. Multi-round
// stages amortize the per-stage dispatch (STAGE_BEGIN/STAGE_END) so the
// per-round barrier cost — the thing the frames-vs-shm A/B is about — is
// what dominates the measured path.
struct StageDriver {
  const Graph& g;
  SyncRunner<std::uint64_t> runner;

  StageDriver(const Graph& graph, const EngineOptions& opts)
      : g(graph), runner(graph, initial(graph), opts) {}

  static std::vector<std::uint64_t> initial(const Graph& graph) {
    std::vector<std::uint64_t> init(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) init[v] = graph.id(v);
    return init;
  }

  void run_one_stage(int rounds_per_stage) {
    const auto step = shard_safe([](const auto& v) -> std::uint64_t {
      std::uint64_t m = v.self();
      v.for_each_neighbor(
          [&](NodeId u) { m = std::max(m, v.neighbor(u)); });
      return m * 6364136223846793005ULL + 1442695040888963407ULL;
    });
    runner.run_rounds(rounds_per_stage, step);
  }
};

enum Mode {
  kInproc = 0,
  kForkPerStage,      // per-stage pools, shm barrier
  kPersistentFrames,  // fork-once pool, coordinator frame barrier
  kPersistentShm,     // fork-once pool, shm epoch barrier
};

struct PipelineResult {
  double total_ms = 0.0;
  std::vector<std::uint64_t> states;
  ProcShardedBackend::Totals totals;
};

// Runs the stage pipeline `reps` times against one driver (the persistent
// pool forks once, on the first rep) and reports the *minimum* rep wall
// clock — the standard noise-robust estimator; on a small shared box the
// scheduler can add milliseconds of skew to any single rep. Final states
// reflect all reps' rounds, so the cross-mode identity assertion still
// covers every executed round.
// `fault_stage` >= 0 runs that stage under FaultInjector cell scope 0, so a
// cell=0 fault spec armed by the caller fires in exactly one stage per rep
// (the recovery A/B); it also pins the pool's respawn budget so the bench
// is deterministic regardless of DELTACOLOR_SHARD_* in the environment.
PipelineResult run_pipeline(const Graph& g, int stages, int rounds_per_stage,
                            int reps, int shards, Mode mode,
                            int fault_stage = -1) {
  std::unique_ptr<ProcShardedBackend> backend;
  EngineOptions opts;
  opts.num_threads = 1;
  if (mode != kInproc) {
    backend = std::make_unique<ProcShardedBackend>(
        shards, /*persistent=*/mode != kForkPerStage,
        mode == kPersistentFrames ? BarrierMode::kFrames : BarrierMode::kShm);
    if (fault_stage >= 0) {
      backend->set_respawn_budget(2);
      backend->set_degrade(false);
    }
    backend->prepare(g);
    opts.backend = backend.get();
  }
  StageDriver driver(g, opts);
  PipelineResult res;
  res.total_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < stages; ++s) {
      if (s == fault_stage) {
        FaultInjector::CellScope scope(/*cell=*/0, /*attempt=*/0);
        driver.run_one_stage(rounds_per_stage);
      } else {
        driver.run_one_stage(rounds_per_stage);
      }
    }
    res.total_ms = std::min(
        res.total_ms, std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
  }
  res.states = driver.runner.states();
  if (backend != nullptr) res.totals = backend->totals();
  return res;
}

std::uint32_t pooled_percentile(
    const std::vector<std::vector<std::uint32_t>>& per_shard, double p) {
  std::vector<std::uint32_t> all;
  for (const auto& v : per_shard) all.insert(all.end(), v.begin(), v.end());
  if (all.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(all.size() - 1) + 0.5);
  std::nth_element(all.begin(), all.begin() + idx, all.end());
  return all[idx];
}

int run(bool quick) {
  banner("SHARD", "persistent pool + shm epoch barrier: forks O(stages) -> "
                  "O(1), per-round sync frames -> 0");
  const int stages = quick ? 6 : 20;
  const int rounds_per_stage = quick ? 8 : 16;
  const int reps = quick ? 3 : 5;
  const NodeId n = quick ? 4000 : 20000;
  const int degree = 8;
  const Graph g = random_regular(n, degree, 7);
  std::cout << "instance: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << ", stages=" << stages
            << " (" << rounds_per_stage << " engine rounds each), best of "
            << reps << " reps\n\n";

  int exit_code = 0;
  Table t({"shards", "mode", "stages", "forks", "ctl_frames/round",
           "barrier_p50(ns)", "wall(ms)", "ms/stage", "identical"});
  for (const int shards : {2, 4}) {
    const PipelineResult oracle =
        run_pipeline(g, stages, rounds_per_stage, reps, shards, kInproc);
    const PipelineResult forked =
        run_pipeline(g, stages, rounds_per_stage, reps, shards, kForkPerStage);
    const PipelineResult frames = run_pipeline(g, stages, rounds_per_stage,
                                               reps, shards, kPersistentFrames);
    const PipelineResult shm = run_pipeline(g, stages, rounds_per_stage, reps,
                                            shards, kPersistentShm);
    const bool fork_ok = forked.states == oracle.states;
    const bool frames_ok = frames.states == oracle.states;
    const bool shm_ok = shm.states == oracle.states;
    if (!fork_ok || !frames_ok || !shm_ok) exit_code = 1;

    const auto halo_per_round = [](const PipelineResult& r) {
      std::uint64_t bytes = 0;
      for (const std::uint64_t b : r.totals.boundary_bytes_out) bytes += b;
      return r.totals.rounds > 0 ? bytes / r.totals.rounds : 0;
    };
    const auto frames_per_round = [](const PipelineResult& r) {
      return r.totals.rounds > 0 ? r.totals.ctl_frames / r.totals.rounds : 0;
    };
    t.row(shards, "in-process", stages, 0, 0, 0, oracle.total_ms,
          oracle.total_ms / stages, "-");
    const auto emit = [&](const char* name, const PipelineResult& r,
                          bool ok) {
      t.row(shards, name, stages,
            static_cast<std::int64_t>(r.totals.forks),
            static_cast<std::int64_t>(frames_per_round(r)),
            static_cast<std::int64_t>(
                pooled_percentile(r.totals.barrier_wait_ns, 0.50)),
            r.total_ms, r.total_ms / stages, verdict(ok));
    };
    emit("fork-per-stage", forked, fork_ok);
    emit("persist+frames", frames, frames_ok);
    emit("persist+shm", shm, shm_ok);

    struct Row {
      const char* label;
      const PipelineResult* r;
      bool persistent;
      const char* barrier;
      bool ok;
    };
    const Row rows[] = {
        {"fork-per-stage", &forked, false, "shm", fork_ok},
        {"persistent", &frames, true, "frames", frames_ok},
        {"persistent", &shm, true, "shm", shm_ok},
    };
    for (const Row& row : rows) {
      const PipelineResult& r = *row.r;
      BenchJson("SHARD")
          .field("workload", "stage-dispatch")
          .field("shards", shards)
          .field("stages", stages)
          .field("persistent", row.persistent)
          .field("barrier", row.barrier)
          .field("forks", static_cast<std::int64_t>(r.totals.forks))
          .field("stage_reuse",
                 static_cast<std::int64_t>(r.totals.stage_reuse))
          .field("shm_bytes", static_cast<std::int64_t>(r.totals.shm_bytes))
          .field("wall_ms", r.total_ms)
          .field("ms_per_stage", r.total_ms / stages)
          .field("halo_bytes_per_round",
                 static_cast<std::int64_t>(halo_per_round(r)))
          .field("ctl_frames", static_cast<std::int64_t>(r.totals.ctl_frames))
          .field("ctl_frames_per_round",
                 static_cast<std::int64_t>(frames_per_round(r)))
          .field("barrier_wait_ns_p50",
                 static_cast<std::int64_t>(
                     pooled_percentile(r.totals.barrier_wait_ns, 0.50)))
          .field("barrier_wait_ns_p95",
                 static_cast<std::int64_t>(
                     pooled_percentile(r.totals.barrier_wait_ns, 0.95)))
          .field("halo_publish_ns_p50",
                 static_cast<std::int64_t>(
                     pooled_percentile(r.totals.halo_publish_ns, 0.50)))
          .field("halo_publish_ns_p95",
                 static_cast<std::int64_t>(
                     pooled_percentile(r.totals.halo_publish_ns, 0.95)))
          .field("dispatch_speedup_vs_fork",
                 row.persistent
                     ? forked.total_ms / std::max(r.total_ms, 1e-9)
                     : 1.0)
          .field("sync_speedup_vs_frames",
                 row.persistent && std::strcmp(row.barrier, "shm") == 0
                     ? frames.total_ms / std::max(shm.total_ms, 1e-9)
                     : 1.0)
          .field("identical", row.ok)
          .print();
    }
  }

  // Recovery A/B: same shm pipeline, one rep each, with a worker SIGKILL
  // injected mid-round in the middle stage of the faulted run. The pool
  // must respawn the dead worker, replay the interrupted stage, and land on
  // bit-identical states; the wall-clock delta is the price of one replay.
  {
    const int shards = 4;
    const int kill_stage = stages / 2;
    FaultSpec kill;
    kill.category = FaultCategory::kProcessKill;
    kill.cell = 0;  // matches only the CellScope(0) stage in the faulted run
    kill.round = rounds_per_stage / 2;
    kill.shard = 1;
    kill.attempts = 1;  // the replay attempt runs clean
    const PipelineResult clean = run_pipeline(g, stages, rounds_per_stage,
                                              /*reps=*/1, shards,
                                              kPersistentShm, stages + 1);
    FaultInjector::global().arm({kill}, /*seed=*/7);
    const PipelineResult faulted = run_pipeline(
        g, stages, rounds_per_stage, /*reps=*/1, shards, kPersistentShm,
        kill_stage);
    FaultInjector::global().disarm();
    const bool recovered = faulted.totals.respawns >= 1;
    const bool identical = faulted.states == clean.states;
    if (!recovered || !identical) exit_code = 1;

    const auto frames_per_round = [](const PipelineResult& r) {
      return r.totals.rounds > 0 ? r.totals.ctl_frames / r.totals.rounds : 0;
    };
    const auto emit = [&](const char* name, const PipelineResult& r,
                          bool ok) {
      t.row(shards, name, stages,
            static_cast<std::int64_t>(r.totals.forks),
            static_cast<std::int64_t>(frames_per_round(r)),
            static_cast<std::int64_t>(
                pooled_percentile(r.totals.barrier_wait_ns, 0.50)),
            r.total_ms, r.total_ms / stages, verdict(ok));
    };
    emit("shm clean (1 rep)", clean, true);
    emit("shm + mid-stage kill", faulted, recovered && identical);

    BenchJson("SHARD")
        .field("workload", "recovery")
        .field("shards", shards)
        .field("stages", stages)
        .field("persistent", true)
        .field("barrier", "shm")
        .field("recovery", true)
        .field("respawns", static_cast<std::int64_t>(faulted.totals.respawns))
        .field("stalls", static_cast<std::int64_t>(faulted.totals.stalls))
        .field("replayed_rounds",
               static_cast<std::int64_t>(faulted.totals.replayed_rounds))
        .field("degraded", static_cast<std::int64_t>(faulted.totals.degraded))
        .field("clean_wall_ms", clean.total_ms)
        .field("wall_ms", faulted.total_ms)
        .field("replay_overhead_ms", faulted.total_ms - clean.total_ms)
        .field("replay_overhead_x",
               faulted.total_ms / std::max(clean.total_ms, 1e-9))
        .field("identical", identical)
        .print();
  }
  t.print();
  std::cout << "\npersist+shm pays zero per-round control frames (the frame "
               "barrier pays 2 frames/shard/round); its residual "
               "ctl_frames/round is the per-stage STAGE_BEGIN/STAGE_END pair "
               "amortized over the stage's rounds. All sharded rows are "
               "asserted bit-identical to the in-process oracle; the "
               "mid-stage-kill row is asserted bit-identical to the clean "
               "run after respawn + replay.\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;
  return run(quick);
}
