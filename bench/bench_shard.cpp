// bench_shard — stage-dispatch microbenchmark for the persistent shard
// worker pool (local/shard_runner.hpp).
//
// A pipeline of many short stages is the worst case for fork-per-stage
// execution: the fork + exec-free warmup dominates the microseconds of
// actual stepping. The persistent pool forks once per prepared graph and
// dispatches every subsequent stage to the live workers over the control
// socketpairs, with all node state and halo records moving through the
// shared-memory plane. This bench drives the same N-stage pipeline through
//   (a) the in-process oracle (backend = nullptr),
//   (b) ProcShardedBackend(shards, persistent=false)  — fork per stage,
//   (c) ProcShardedBackend(shards, persistent=true)   — fork once,
// asserts the final states of all three are bit-identical, and reports
// per-stage wall clock, total forks, stage reuse, and halo bytes per round
// as BENCH_JSON records.
//
// Usage: bench_shard [--quick]   (--quick cuts stages/instance size ~4x)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/table.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

// One stage = one engine round of neighborhood-max gossip with a
// round-salted perturbation: every node changes every round, so each round
// publishes the full changed-boundary record set — dispatch latency and
// halo routing are both on the measured path.
struct StageDriver {
  const Graph& g;
  SyncRunner<std::uint64_t> runner;

  StageDriver(const Graph& graph, const EngineOptions& opts)
      : g(graph), runner(graph, initial(graph), opts) {}

  static std::vector<std::uint64_t> initial(const Graph& graph) {
    std::vector<std::uint64_t> init(graph.num_nodes());
    for (NodeId v = 0; v < graph.num_nodes(); ++v) init[v] = graph.id(v);
    return init;
  }

  void run_one_stage() {
    const auto step = shard_safe([](const auto& v) -> std::uint64_t {
      std::uint64_t m = v.self();
      v.for_each_neighbor(
          [&](NodeId u) { m = std::max(m, v.neighbor(u)); });
      return m * 6364136223846793005ULL + 1442695040888963407ULL;
    });
    runner.run_rounds(1, step);
  }
};

struct PipelineResult {
  double total_ms = 0.0;
  std::vector<std::uint64_t> states;
  ProcShardedBackend::Totals totals;
};

PipelineResult run_pipeline(const Graph& g, int stages, int shards,
                            int mode /* 0=inproc, 1=fork-per-stage,
                                        2=persistent */) {
  std::unique_ptr<ProcShardedBackend> backend;
  EngineOptions opts;
  opts.num_threads = 1;
  if (mode != 0) {
    backend = std::make_unique<ProcShardedBackend>(shards, mode == 2);
    backend->prepare(g);
    opts.backend = backend.get();
  }
  StageDriver driver(g, opts);
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < stages; ++s) driver.run_one_stage();
  PipelineResult res;
  res.total_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  res.states = driver.runner.states();
  if (backend != nullptr) res.totals = backend->totals();
  return res;
}

int run(bool quick) {
  banner("SHARD", "persistent pool: forks O(stages) -> O(1), dispatch "
                  "overhead down vs fork-per-stage");
  const int stages = quick ? 10 : 40;
  const NodeId n = quick ? 4000 : 20000;
  const int degree = 8;
  const Graph g = random_regular(n, degree, 7);
  std::cout << "instance: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << ", stages=" << stages
            << " (1 engine round each)\n\n";

  int exit_code = 0;
  Table t({"shards", "mode", "stages", "forks", "stage_reuse", "wall(ms)",
           "ms/stage", "halo_B/round", "identical"});
  for (const int shards : {2, 4}) {
    const PipelineResult oracle = run_pipeline(g, stages, shards, 0);
    const PipelineResult forked = run_pipeline(g, stages, shards, 1);
    const PipelineResult pooled = run_pipeline(g, stages, shards, 2);
    const bool fork_ok = forked.states == oracle.states;
    const bool pool_ok = pooled.states == oracle.states;
    if (!fork_ok || !pool_ok) exit_code = 1;

    const auto halo_per_round = [](const PipelineResult& r) {
      std::uint64_t bytes = 0;
      for (const std::uint64_t b : r.totals.boundary_bytes_out) bytes += b;
      return r.totals.rounds > 0 ? bytes / r.totals.rounds : 0;
    };
    t.row(shards, "in-process", stages, 0, 0, oracle.total_ms,
          oracle.total_ms / stages, 0, "-");
    t.row(shards, "fork-per-stage", stages,
          static_cast<std::int64_t>(forked.totals.forks),
          static_cast<std::int64_t>(forked.totals.stage_reuse),
          forked.total_ms, forked.total_ms / stages,
          static_cast<std::int64_t>(halo_per_round(forked)),
          verdict(fork_ok));
    t.row(shards, "persistent", stages,
          static_cast<std::int64_t>(pooled.totals.forks),
          static_cast<std::int64_t>(pooled.totals.stage_reuse),
          pooled.total_ms, pooled.total_ms / stages,
          static_cast<std::int64_t>(halo_per_round(pooled)),
          verdict(pool_ok));

    for (const auto* r : {&forked, &pooled}) {
      const bool persistent = r == &pooled;
      BenchJson("SHARD")
          .field("workload", "stage-dispatch")
          .field("shards", shards)
          .field("stages", stages)
          .field("persistent", persistent)
          .field("forks", static_cast<std::int64_t>(r->totals.forks))
          .field("stage_reuse",
                 static_cast<std::int64_t>(r->totals.stage_reuse))
          .field("shm_bytes", static_cast<std::int64_t>(r->totals.shm_bytes))
          .field("wall_ms", r->total_ms)
          .field("ms_per_stage", r->total_ms / stages)
          .field("halo_bytes_per_round",
                 static_cast<std::int64_t>(halo_per_round(*r)))
          .field("dispatch_speedup_vs_fork",
                 persistent ? forked.total_ms /
                                  std::max(pooled.total_ms, 1e-9)
                            : 1.0)
          .field("identical", persistent ? pool_ok : fork_ok)
          .print();
    }
  }
  t.print();
  std::cout << "\npersistent rows must show forks == shards and stage_reuse "
               "== stages; fork-per-stage rows fork shards x stages "
               "processes. Colorings are asserted bit-identical to the "
               "in-process oracle.\n";
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;
  return run(quick);
}
