// E6 — Theorem 2: the randomized algorithm Delta-colors dense
// constant-degree graphs in O(Delta + log log n) rounds w.h.p.; the
// shattered components have size poly(Delta) * log n.
//
// Sweep n at fixed Delta; report total rounds, the post-shattering
// component statistics, and the (weak at laptop scale) log log n shape of
// the n-dependent part.
#include <benchmark/benchmark.h>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E6",
         "Theorem 2: randomized Delta-coloring; shattering into "
         "poly(Delta) log n components");
  Table t({"n", "rounds", "tnodes", "failed", "components", "maxCompSize",
           "maxCompRounds", "valid"});
  std::vector<double> ns, comp_sizes;
  for (int cliques = 32; cliques <= 2048; cliques *= 2) {
    const CliqueInstance inst = hard_instance(cliques, 16, 21);
    const auto res = randomized_delta_color(
        inst.graph, scaled_randomized_options(16, 1000 + cliques));
    t.row(inst.graph.num_nodes(), res.ledger.total(),
          res.stats.tnodes_placed, res.stats.failed_cliques,
          res.stats.components, res.stats.max_component_vertices,
          res.stats.max_component_rounds, res.valid ? "yes" : "NO");
    ns.push_back(inst.graph.num_nodes());
    comp_sizes.push_back(res.stats.max_component_vertices);
  }
  t.print();
  const LinearFit fit = fit_log(ns, comp_sizes);
  std::cout << "fit maxCompSize ~ " << fit.intercept << " + " << fit.slope
            << " * log2(n)   (r2 = " << fit.r2
            << ") — the shattering lemma's poly(Delta) log n shape\n\n";

  // At the default coverage depth the layers absorb everything; shrinking
  // the depth exposes the actual shattered components and their
  // log-n-bounded growth.
  std::cout << "coverage-depth sweep (the default depth 3 usually covers "
               "the whole graph):\n";
  Table t2({"layer_depth", "n", "components", "maxCompSize",
            "maxCompRounds", "valid"});
  for (const int depth : {1, 2, 3}) {
    for (const int cliques : {128, 512, 2048}) {
      const CliqueInstance inst = hard_instance(cliques, 16, 21);
      RandomizedOptions opt = scaled_randomized_options(16, 777);
      opt.layer_depth = depth;
      opt.placement_rounds = 2;  // weaker placement: more failures
      const auto res = randomized_delta_color(inst.graph, opt);
      t2.row(depth, inst.graph.num_nodes(), res.stats.components,
             res.stats.max_component_vertices,
             res.stats.max_component_rounds, res.valid ? "yes" : "NO");
    }
  }
  t2.print();
}

void BM_RandomizedColoring(benchmark::State& state) {
  const int cliques = static_cast<int>(state.range(0));
  const CliqueInstance inst = hard_instance(cliques, 16, 21);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = randomized_delta_color(
        inst.graph, scaled_randomized_options(16, ++seed));
    benchmark::DoNotOptimize(res.color.data());
    state.counters["rounds"] = static_cast<double>(res.ledger.total());
  }
  state.counters["n"] = inst.graph.num_nodes();
}
BENCHMARK(BM_RandomizedColoring)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
