// E6 — Theorem 2: the randomized algorithm Delta-colors dense
// constant-degree graphs in O(Delta + log log n) rounds w.h.p.; the
// shattered components have size poly(Delta) * log n.
//
// Sweep n at fixed Delta; report total rounds, the post-shattering
// component statistics, and the (weak at laptop scale) log log n shape of
// the n-dependent part.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string_view>
#include <thread>

#include "bench_support/codec.hpp"
#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E6",
         "Theorem 2: randomized Delta-coloring; shattering into "
         "poly(Delta) log n components");
  std::vector<int> clique_grid;
  for (int cliques = 32; cliques <= 2048; cliques *= 2)
    clique_grid.push_back(cliques);

  // Scalar row + stored ledger, journalable under
  // DELTACOLOR_SWEEP_JOURNAL / _RESUME (see sweep.hpp): completed cells
  // round-trip through the JSONL checkpoint instead of re-running.
  struct Row {
    NodeId n = 0;
    bool valid = false;
    std::int64_t tnodes = 0;
    std::int64_t failed = 0;
    std::int64_t components = 0;
    std::int64_t max_comp_vertices = 0;
    std::int64_t max_comp_rounds = 0;
    RoundLedger ledger;
  };
  const CellCodec<Row> codec{
      [](const Row& row) {
        return FieldWriter()
            .add(row.n)
            .add(row.valid ? 1 : 0)
            .add(row.tnodes)
            .add(row.failed)
            .add(row.components)
            .add(row.max_comp_vertices)
            .add(row.max_comp_rounds)
            .add(encode_ledger(row.ledger))
            .str();
      },
      [](std::string_view text, Row* row) {
        FieldReader in(text);
        std::int64_t n = 0;
        std::string_view ledger;
        if (!in.next_int(&n) || !in.next_bool(&row->valid) ||
            !in.next_int(&row->tnodes) || !in.next_int(&row->failed) ||
            !in.next_int(&row->components) ||
            !in.next_int(&row->max_comp_vertices) ||
            !in.next_int(&row->max_comp_rounds) || !in.next(&ledger))
          return false;
        row->n = static_cast<NodeId>(n);
        return decode_ledger(ledger, &row->ledger);
      }};
  SweepDriver driver(sweep_options_from_env());
  const auto result = driver.run_cells<Row>(
      clique_grid.size(),
      [&](std::size_t i, CellContext& ctx) {
        const int cliques = clique_grid[i];
        const auto inst = cached_hard(cliques, 16, 21, &ctx.ledger());
        auto opt = scaled_randomized_options(16, 1000 + cliques);
        opt.engine = ctx.engine();
        const auto res = randomized_delta_color(inst->graph, opt);
        Row row;
        row.n = inst->graph.num_nodes();
        row.valid = res.valid;
        row.tnodes = res.stats.tnodes_placed;
        row.failed = res.stats.failed_cliques;
        row.components = res.stats.components;
        row.max_comp_vertices = res.stats.max_component_vertices;
        row.max_comp_rounds = res.stats.max_component_rounds;
        row.ledger = res.ledger;
        return row;
      },
      [&](std::size_t i) {
        std::ostringstream key;
        key << "E6/rand/delta=16/cliques=" << clique_grid[i]
            << "/inst_seed=21/alg_seed=" << (1000 + clique_grid[i]);
        return key.str();
      },
      &codec);
  const auto& rows = result.rows;

  Table t({"n", "rounds", "tnodes", "failed", "components", "maxCompSize",
           "maxCompRounds", "valid"});
  std::vector<double> ns, comp_sizes;
  for (const Row& row : rows) {
    BenchJson("E6")
        .field("n", row.n)
        .field("valid", row.valid)
        .ledger(row.ledger)
        .print();
    t.row(row.n, row.ledger.total(), row.tnodes, row.failed, row.components,
          row.max_comp_vertices, row.max_comp_rounds,
          row.valid ? "yes" : "NO");
    ns.push_back(row.n);
    comp_sizes.push_back(static_cast<double>(row.max_comp_vertices));
  }
  t.print();
  const LinearFit fit = fit_log(ns, comp_sizes);
  std::cout << "fit maxCompSize ~ " << fit.intercept << " + " << fit.slope
            << " * log2(n)   (r2 = " << fit.r2
            << ") — the shattering lemma's poly(Delta) log n shape\n\n";

  // At the default coverage depth the layers absorb everything; shrinking
  // the depth exposes the actual shattered components and their
  // log-n-bounded growth.
  std::cout << "coverage-depth sweep (the default depth 3 usually covers "
               "the whole graph):\n";
  struct DepthCell {
    int depth;
    int cliques;
  };
  std::vector<DepthCell> depth_cells;
  for (const int depth : {1, 2, 3})
    for (const int cliques : {128, 512, 2048})
      depth_cells.push_back({depth, cliques});
  struct DepthRow {
    NodeId n = 0;
    RandomizedResult res;
  };
  SweepDriver depth_driver;
  const auto depth_rows = depth_driver.run<DepthRow>(
      depth_cells.size(), [&](std::size_t i, CellContext& ctx) {
        const DepthCell& c = depth_cells[i];
        const auto inst = cached_hard(c.cliques, 16, 21, &ctx.ledger());
        RandomizedOptions opt = scaled_randomized_options(16, 777);
        opt.layer_depth = c.depth;
        opt.placement_rounds = 2;  // weaker placement: more failures
        opt.engine = ctx.engine();
        DepthRow row;
        row.res = randomized_delta_color(inst->graph, opt);
        row.n = inst->graph.num_nodes();
        return row;
      });
  Table t2({"layer_depth", "n", "components", "maxCompSize",
            "maxCompRounds", "valid"});
  for (std::size_t i = 0; i < depth_cells.size(); ++i) {
    const auto& res = depth_rows[i].res;
    t2.row(depth_cells[i].depth, depth_rows[i].n, res.stats.components,
           res.stats.max_component_vertices, res.stats.max_component_rounds,
           res.valid ? "yes" : "NO");
  }
  t2.print();
  std::cout << driver.report() << "\n";
}

// The pre-rework engine, transcribed for a before/after baseline:
// type-erased per-node dispatch (std::function in the hot loop), a
// per-node round counter carried in the state, and a trial sampler that
// heap-allocates two vectors per step. Produces the same coloring as the
// reworked engine (identical RNG stream), so the comparison is pure
// engine overhead.
std::vector<Color> legacy_color_trial(const Graph& g, std::uint64_t seed,
                                      int* rounds_out) {
  struct S {
    Color color = kNoColor;
    Color trial = kNoColor;
    int round = 0;
  };
  const NodeId n = g.num_nodes();
  const int palette = g.max_degree() + 1;
  std::vector<S> cur(n), nxt(n);
  const std::function<S(NodeId, const std::vector<S>&)> step =
      [&](NodeId v, const std::vector<S>& prev) {
        S s = prev[v];
        const int round = s.round++;
        if (s.color != kNoColor) return s;
        if (round % 2 == 0) {
          std::vector<bool> used(static_cast<std::size_t>(palette), false);
          for (const NodeId u : g.neighbors(v))
            if (prev[u].color != kNoColor)
              used[static_cast<std::size_t>(prev[u].color)] = true;
          std::vector<Color> free;
          for (Color c = 0; c < palette; ++c)
            if (!used[static_cast<std::size_t>(c)]) free.push_back(c);
          s.trial = free[hash_mix(seed, g.id(v),
                                  static_cast<std::uint64_t>(round)) %
                         free.size()];
          return s;
        }
        bool clash = false;
        for (const NodeId u : g.neighbors(v))
          if (prev[u].trial == s.trial || prev[u].color == s.trial)
            clash = true;
        if (!clash) s.color = s.trial;
        s.trial = kNoColor;
        return s;
      };
  const std::function<bool(const std::vector<S>&)> done =
      [](const std::vector<S>& states) {
        for (const S& s : states)
          if (s.color == kNoColor) return false;
        return true;
      };
  const int max_rounds = 128 * (32 - __builtin_clz(n + 2));
  int rounds = 0;
  while (rounds < max_rounds && !done(cur)) {
    for (NodeId v = 0; v < n; ++v) nxt[v] = step(v, cur);
    cur.swap(nxt);
    ++rounds;
  }
  *rounds_out = rounds;
  std::vector<Color> color(n);
  for (NodeId v = 0; v < n; ++v) color[v] = cur[v].color;
  return color;
}

// Execution-engine head-to-head on the largest seed workload: the same
// color-trial protocol under full sweeps vs sparse activation (frontier),
// serial vs the parallel partitioner, against the transcribed pre-rework
// engine as the baseline. Rounds are identical by construction (the
// engine is deterministic); wall-clock is what changes.
void run_engine_tables(bool quick = false) {
  banner("E6b", "round engine: full sweeps vs sparse activation "
                "(color trials, largest workload)");
  // --quick (CI perf-smoke): a quarter-size workload and single reps keep
  // the job under a minute while exercising every engine configuration.
  const auto inst = cached_hard(quick ? 512 : 2048, 16, 21);
  const Graph& g = inst->graph;
  std::cout << "n = " << g.num_nodes() << ", Delta = " << g.max_degree()
            << "\n";
  Table t({"engine", "workers", "frontier", "rounds", "wall(ms)",
           "speedup", "valid"});
  double baseline_ms = 0.0;
  std::vector<Color> baseline_color;
  {  // pre-rework baseline
    int rounds = 0;
    const auto t0 = std::chrono::steady_clock::now();
    baseline_color = legacy_color_trial(g, 5, &rounds);
    baseline_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    const bool valid =
        is_proper_coloring(g, baseline_color, g.max_degree() + 1);
    t.row("pre-rework (type-erased)", 1, "no", rounds, baseline_ms, 1.0,
          valid ? "yes" : "NO");
    BenchJson("E6")
        .field("workload", "color-trial-engine")
        .field("engine", "pre-rework")
        .field("workers", 1)
        .field("frontier", false)
        .field("n", g.num_nodes())
        .field("valid", valid)
        .field("wall_ms", baseline_ms)
        .field("speedup_vs_baseline", 1.0)
        .print();
  }
  struct Config {
    const char* name;
    EngineOptions opts;
  };
  const Config configs[] = {
      {"full-sweep serial", {1, false}},
      {"frontier serial", {1, true}},
      {"full-sweep 4 workers", {4, false}},
      {"frontier 4 workers", {4, true}},
  };
  for (const Config& cfg : configs) {
    RoundLedger ledger;
    const auto t0 = std::chrono::steady_clock::now();
    const auto color =
        color_trial_message_passing(g, 5, ledger, "trial", cfg.opts);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    const bool valid = is_proper_coloring(g, color, g.max_degree() + 1) &&
                       color == baseline_color;
    t.row(cfg.name, cfg.opts.num_threads, cfg.opts.frontier ? "yes" : "no",
          ledger.total(), ms, baseline_ms / std::max(ms, 1e-9),
          valid ? "yes" : "NO");
    BenchJson("E6")
        .field("workload", "color-trial-engine")
        .field("engine", cfg.name)
        .field("workers", cfg.opts.num_threads)
        .field("frontier", cfg.opts.frontier)
        .field("n", g.num_nodes())
        .field("valid", valid)
        .field("wall_ms", ms)
        .field("speedup_vs_baseline", baseline_ms / std::max(ms, 1e-9))
        .ledger(ledger)
        .print();
  }
  t.print();
  std::cout << "speedup is vs the transcribed pre-rework engine "
               "(type-erased dispatch, allocating sampler); colorings are "
               "asserted bit-identical across all rows\n";

  // The composed Theorem 2 pipeline under the same knobs: EngineOptions
  // flow through LocalContext into every nested subroutine (shattered
  // components included), so this measures the paper pipeline — not a demo
  // protocol — benefiting from workers/frontier. Bit-identical colorings
  // asserted across configs.
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\ncomposed randomized pipeline under the same engine "
               "configs (hardware threads = "
            << hw << "):\n";
  Table t3({"engine", "workers", "frontier", "rounds", "wall(ms)",
            "speedup", "valid"});
  double pipeline_baseline_ms = 0.0;
  std::vector<Color> pipeline_baseline_color;
  for (const Config& cfg : configs) {
    AlgorithmRequest req;
    req.seed = 21;
    req.engine = cfg.opts;
    // Best-of-3 to keep single-run noise below the frontier delta.
    double ms = 0.0;
    AlgorithmResult res;
    for (int rep = 0; rep < (quick ? 1 : 3); ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      res = run_registered("rand", g, req);
      const double rep_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      if (rep == 0 || rep_ms < ms) ms = rep_ms;
    }
    if (pipeline_baseline_color.empty()) {
      pipeline_baseline_ms = ms;
      pipeline_baseline_color = res.color;
    }
    const bool valid = res.ok && res.color == pipeline_baseline_color;
    t3.row(cfg.name, cfg.opts.num_threads, cfg.opts.frontier ? "yes" : "no",
           res.ledger.total(), ms,
           pipeline_baseline_ms / std::max(ms, 1e-9), valid ? "yes" : "NO");
    BenchJson("E6")
        .field("workload", "composed-rand-pipeline")
        .field("engine", cfg.name)
        .field("workers", cfg.opts.num_threads)
        .field("frontier", cfg.opts.frontier)
        .field("hw_threads", static_cast<std::int64_t>(hw))
        .field("n", g.num_nodes())
        .field("valid", valid)
        .field("wall_ms", ms)
        .field("speedup_vs_serial",
               pipeline_baseline_ms / std::max(ms, 1e-9))
        .ledger(res.ledger)
        .print();
  }
  t3.print();
  std::cout << "worker rows can only beat serial when hardware threads > 1; "
               "frontier reduces wall-clock at identical rounds and "
               "colorings\n";
}

void BM_RandomizedColoring(benchmark::State& state) {
  const int cliques = static_cast<int>(state.range(0));
  const auto inst = cached_hard(cliques, 16, 21);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = randomized_delta_color(
        inst->graph, scaled_randomized_options(16, ++seed));
    benchmark::DoNotOptimize(res.color.data());
    state.counters["rounds"] = static_cast<double>(res.ledger.total());
  }
  state.counters["n"] = inst->graph.num_nodes();
}
BENCHMARK(BM_RandomizedColoring)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      // Perf-smoke mode: engine head-to-head only, reduced workload, no
      // google-benchmark sweeps. Same BENCH_JSON schema as the full run.
      run_engine_tables(true);
      return 0;
    }
  }
  run_tables();
  run_engine_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
