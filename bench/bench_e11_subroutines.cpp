// E11 — the subroutine complexities entering Lemma 18's decomposition:
// T_MM, T_{deg+1}, MIS, and ruling sets are (Delta^2 + log* n)-shaped in
// our realization (the paper's black boxes are O(Delta + log* n) /
// O~(log^{5/3} n); substitution documented in DESIGN.md). Rounds must be
// essentially flat in n and grow with Delta.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

// The subroutine columns, resolved by name from the shared algorithm
// registry (the same catalog `dcolor --list` prints).
constexpr const char* kSubroutines[] = {"linial", "greedy", "mis-det",
                                        "matching", "ruling"};
constexpr std::size_t kNumSubroutines = 5;

void run_tables() {
  banner("E11", "subroutine round complexities (flat in n, ~Delta^2)");

  // Every (instance, subroutine) pair is one sweep cell; the five columns
  // of a table row share the cached instance.
  struct Cell {
    int cliques;
    int delta;
    std::size_t subroutine;
  };
  std::vector<Cell> cells;
  for (int cliques = 32; cliques <= 1024; cliques *= 4)
    for (std::size_t s = 0; s < kNumSubroutines; ++s)
      cells.push_back({cliques, 16, s});
  const std::size_t delta_section = cells.size();
  for (const int delta : {8, 16, 32, 63})
    for (std::size_t s = 0; s < kNumSubroutines; ++s)
      cells.push_back({64, delta, s});

  struct Row {
    NodeId n = 0;
    std::int64_t rounds = 0;
  };
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<Row>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto inst =
            cached_hard(c.cliques, c.delta, 3, &ctx.ledger());
        AlgorithmRequest req;
        req.engine = ctx.engine();
        Row row;
        row.n = inst->graph.num_nodes();
        row.rounds = run_registered(kSubroutines[c.subroutine], inst->graph,
                                    req)
                         .ledger.total();
        return row;
      });

  {
    Table t({"n", "linial", "deg+1", "mis", "matching", "ruling"});
    for (std::size_t at = 0; at < delta_section; at += kNumSubroutines)
      t.row(rows[at].n, rows[at].rounds, rows[at + 1].rounds,
            rows[at + 2].rounds, rows[at + 3].rounds, rows[at + 4].rounds);
    std::cout << "fixed Delta = 16, growing n:\n";
    t.print();
  }
  {
    Table t({"Delta", "n", "linial", "deg+1", "mis", "matching", "ruling"});
    for (std::size_t at = delta_section; at < cells.size();
         at += kNumSubroutines)
      t.row(cells[at].delta, rows[at].n, rows[at].rounds,
            rows[at + 1].rounds, rows[at + 2].rounds, rows[at + 3].rounds,
            rows[at + 4].rounds);
    std::cout << "\nfixed clique count, growing Delta:\n";
    t.print();
  }
  std::cout << driver.report() << "\n";
}

// The composed Theorem 1 pipeline (not a demo algorithm) under the
// execution-layer knobs: every nested engine stage inherits the request's
// EngineOptions through LocalContext, so `--threads` / `--frontier` reach
// Linial, KW reduction, matching, HEG scheduling, and the deg+1 instances
// end to end. Colorings are asserted bit-identical across all configs.
// Serial on purpose: this section measures engine wall-clock.
void run_engine_tables() {
  banner("E11b", "composed det pipeline under --threads/--frontier");
  const auto inst = cached_hard(512, 16, 3);
  const Graph& g = inst->graph;
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "n = " << g.num_nodes() << ", Delta = " << g.max_degree()
            << ", hardware threads = " << hw << "\n";
  struct Config {
    const char* name;
    EngineOptions opts;
  };
  const Config configs[] = {
      {"full-sweep serial", {1, false}},
      {"frontier serial", {1, true}},
      {"full-sweep 4 workers", {4, false}},
      {"frontier 4 workers", {4, true}},
  };
  Table t({"engine", "workers", "frontier", "rounds", "wall(ms)", "speedup",
           "valid"});
  double baseline_ms = 0.0;
  std::vector<Color> baseline_color;
  for (const Config& cfg : configs) {
    AlgorithmRequest req;
    req.engine = cfg.opts;
    // Best-of-3: per-run wall clock is single-digit-percent noisy, which
    // would swamp the frontier delta.
    double ms = 0.0;
    AlgorithmResult res;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      res = run_registered("det", g, req);
      const double rep_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      if (rep == 0 || rep_ms < ms) ms = rep_ms;
    }
    if (baseline_color.empty()) {
      baseline_ms = ms;
      baseline_color = res.color;
    }
    const bool valid = res.ok && res.color == baseline_color;
    t.row(cfg.name, cfg.opts.num_threads, cfg.opts.frontier ? "yes" : "no",
          res.ledger.total(), ms, baseline_ms / std::max(ms, 1e-9),
          valid ? "yes" : "NO");
    BenchJson("E11")
        .field("workload", "composed-det-pipeline")
        .field("engine", cfg.name)
        .field("workers", cfg.opts.num_threads)
        .field("frontier", cfg.opts.frontier)
        .field("hw_threads", static_cast<std::int64_t>(hw))
        .field("n", g.num_nodes())
        .field("valid", valid)
        .field("wall_ms", ms)
        .field("speedup_vs_serial", baseline_ms / std::max(ms, 1e-9))
        .ledger(res.ledger)
        .print();
  }
  t.print();
  std::cout << "rounds are engine-invariant by construction; colorings are "
               "asserted bit-identical across all rows; worker rows can "
               "only beat serial when hardware threads > 1 (workers share "
               "a cached process-wide pool)\n";
}

void BM_Linial(benchmark::State& state) {
  const auto inst = cached_hard(256, 16, 3);
  for (auto _ : state) {
    RoundLedger l;
    benchmark::DoNotOptimize(linial_coloring(inst->graph, l).color.data());
  }
}
BENCHMARK(BM_Linial)->Unit(benchmark::kMillisecond);

void BM_MaximalMatching(benchmark::State& state) {
  const auto inst = cached_hard(256, 16, 3);
  for (auto _ : state) {
    RoundLedger l;
    benchmark::DoNotOptimize(
        maximal_matching_deterministic(inst->graph, l).size());
  }
}
BENCHMARK(BM_MaximalMatching)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  run_engine_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
