// E11 — the subroutine complexities entering Lemma 18's decomposition:
// T_MM, T_{deg+1}, MIS, and ruling sets are (Delta^2 + log* n)-shaped in
// our realization (the paper's black boxes are O(Delta + log* n) /
// O~(log^{5/3} n); substitution documented in DESIGN.md). Rounds must be
// essentially flat in n and grow with Delta.
#include <benchmark/benchmark.h>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E11", "subroutine round complexities (flat in n, ~Delta^2)");
  {
    Table t({"n", "linial", "deg+1", "mis", "matching", "ruling"});
    for (int cliques = 32; cliques <= 1024; cliques *= 4) {
      const CliqueInstance inst = hard_instance(cliques, 16, 3);
      const Graph& g = inst.graph;
      RoundLedger l1, l2, l3, l4, l5;
      linial_coloring(g, l1);
      {
        std::vector<Color> color(g.num_nodes(), kNoColor);
        std::vector<bool> active(g.num_nodes(), true);
        deg_plus_one_list_color(g, active, uniform_lists(g, 17), color, l2);
      }
      mis_deterministic(g, l3);
      maximal_matching_deterministic(g, l4);
      ruling_set(g, l5);
      t.row(g.num_nodes(), l1.total(), l2.total(), l3.total(), l4.total(),
            l5.total());
    }
    std::cout << "fixed Delta = 16, growing n:\n";
    t.print();
  }
  {
    Table t({"Delta", "n", "linial", "deg+1", "mis", "matching", "ruling"});
    for (const int delta : {8, 16, 32, 63}) {
      const CliqueInstance inst = hard_instance(64, delta, 3);
      const Graph& g = inst.graph;
      RoundLedger l1, l2, l3, l4, l5;
      linial_coloring(g, l1);
      {
        std::vector<Color> color(g.num_nodes(), kNoColor);
        std::vector<bool> active(g.num_nodes(), true);
        deg_plus_one_list_color(g, active, uniform_lists(g, delta + 1),
                                color, l2);
      }
      mis_deterministic(g, l3);
      maximal_matching_deterministic(g, l4);
      ruling_set(g, l5);
      t.row(delta, g.num_nodes(), l1.total(), l2.total(), l3.total(),
            l4.total(), l5.total());
    }
    std::cout << "\nfixed clique count, growing Delta:\n";
    t.print();
  }
}

void BM_Linial(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(256, 16, 3);
  for (auto _ : state) {
    RoundLedger l;
    benchmark::DoNotOptimize(linial_coloring(inst.graph, l).color.data());
  }
}
BENCHMARK(BM_Linial)->Unit(benchmark::kMillisecond);

void BM_MaximalMatching(benchmark::State& state) {
  const CliqueInstance inst = hard_instance(256, 16, 3);
  for (auto _ : state) {
    RoundLedger l;
    benchmark::DoNotOptimize(
        maximal_matching_deterministic(inst.graph, l).size());
  }
}
BENCHMARK(BM_MaximalMatching)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
