// E12 — ablations of the design constants the paper fixes:
//  * the sub-clique count K (paper: 28) — Lemma 11's margin and HEG
//    feasibility as K varies;
//  * the splitter configuration (levels, segment length) behind Lemma 13;
//  * the easy fraction of the instance — Type I/II composition and where
//    the work shifts between Algorithm 2 and Algorithm 3;
//  * the randomized T-node spacing b.
//
// Each ablation reuses one cached instance across its option variants, and
// the variants run as sweep cells.
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void ablate_subclique_count() {
  std::cout << "K (sub-cliques per clique) at Delta = 63, paper epsilon:\n";
  const std::vector<int> ks = {7, 14, 21, 28};
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      ks.size(), [&](std::size_t i, CellContext& ctx) {
        const auto inst = cached_hard(48, 63, 5, &ctx.ledger());
        DeltaColoringOptions opt;  // paper epsilon = 1/63
        opt.hard.subclique_count = ks[i];
        opt.hard.scale_for_delta = false;
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });
  Table t({"K", "delta_H", "r_H", "ratio", "lemma11", "fallbacks", "valid"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto& st = rows[i].hard_stats;
    t.row(ks[i], st.heg_min_degree, st.heg_rank, st.heg_ratio,
          verdict(st.lemma11_ok), st.split_fallbacks,
          rows[i].valid ? "yes" : "NO");
  }
  t.print();
  std::cout << "(Smaller K gives bigger sub-cliques, hence more slack in\n"
             "Lemma 11 — the paper's 28 is the *largest* K whose real-\n"
             "valued margin closes at epsilon = 1/63.)\n\n";
}

void ablate_splitter() {
  std::cout << "splitter (levels, segment) at Delta = 32:\n";
  struct Cell {
    int levels;
    int segment;
  };
  std::vector<Cell> cells;
  for (const int levels : {1, 2})
    for (const int segment : {16, 100, 400}) cells.push_back({levels, segment});
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const auto inst = cached_hard(64, 32, 6, &ctx.ledger());
        DeltaColoringOptions opt = scaled_options(32);
        opt.hard.split_levels = cells[i].levels;
        opt.hard.split_segment_length = cells[i].segment;
        // Fix K = 16 explicitly: the auto-scaling would both shrink K and
        // downgrade to one splitting level, hiding the `levels` dimension.
        opt.hard.subclique_count = 16;
        opt.hard.scale_for_delta = false;
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });
  Table t({"levels", "segment", "minOut(F3)", "maxIn(F3)", "fallbacks",
           "split rounds", "valid"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& st = rows[i].hard_stats;
    t.row(cells[i].levels, cells[i].segment, st.min_outgoing_f3,
          st.max_incoming_f3, st.split_fallbacks,
          rows[i].ledger.phase_total("phase2-split"),
          rows[i].valid ? "yes" : "NO");
  }
  t.print();
  std::cout << "\n";
}

void ablate_easy_fraction() {
  std::cout << "easy fraction at Delta = 16 (work shifting from Algorithm 2 "
               "to Algorithm 3):\n";
  const std::vector<double> fractions = {0.0, 0.1, 0.3, 0.6, 1.0};
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      fractions.size(), [&](std::size_t i, CellContext& ctx) {
        const auto inst =
            cached_mixed(64, 16, fractions[i], 8, &ctx.ledger());
        auto opt = scaled_options(16);
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });
  Table t({"easy%", "hard", "easy", "typeI", "typeII", "triads",
           "alg2 rounds", "alg3 rounds", "valid"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const auto& res = rows[i];
    const auto& lg = res.ledger;
    const auto alg2 = lg.phase_total("phase1-matching") +
                      lg.phase_total("phase1-heg") +
                      lg.phase_total("phase2-split") +
                      lg.phase_total("phase3-triads") +
                      lg.phase_total("phase4a-pairs") +
                      lg.phase_total("phase4b-rest");
    const auto alg3 = lg.phase_total("easy-ruling") +
                      lg.phase_total("easy-bfs") +
                      lg.phase_total("easy-layers") +
                      lg.phase_total("easy-loopholes");
    t.row(static_cast<int>(fractions[i] * 100), res.num_hard, res.num_easy,
          res.hard_stats.type1, res.hard_stats.type2,
          res.hard_stats.num_triads, alg2, alg3, res.valid ? "yes" : "NO");
  }
  t.print();
  std::cout << "\n";
}

void ablate_tnode_spacing() {
  std::cout << "randomized T-node spacing b at Delta = 16:\n";
  const std::vector<int> spacings = {0, 1, 2};
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<RandomizedResult>(
      spacings.size(), [&](std::size_t i, CellContext& ctx) {
        const auto inst = cached_hard(128, 16, 9, &ctx.ledger());
        RandomizedOptions opt = scaled_randomized_options(16, 17);
        opt.spacing = spacings[i];
        opt.engine = ctx.engine();
        return randomized_delta_color(inst->graph, opt);
      });
  Table t({"b", "tnodes", "failed", "components", "maxCompSize", "valid"});
  for (std::size_t i = 0; i < spacings.size(); ++i) {
    const auto& res = rows[i];
    t.row(spacings[i], res.stats.tnodes_placed, res.stats.failed_cliques,
          res.stats.components, res.stats.max_component_vertices,
          res.valid ? "yes" : "NO");
  }
  t.print();
  std::cout << "(Larger b suppresses useless vertices but blocks whole\n"
               "cliques from pairing; coverage layers absorb the failures\n"
               "either way.)\n";
}

void BM_AblationPipeline(benchmark::State& state) {
  const auto inst = cached_hard(64, 16, 9);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        delta_color_dense(inst->graph, scaled_options(16)).color.data());
}
BENCHMARK(BM_AblationPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  banner("E12", "ablations of the paper's fixed constants");
  ablate_subclique_count();
  ablate_splitter();
  ablate_easy_fraction();
  ablate_tnode_spacing();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
