// E4 — Lemmas 12 and 13: the balanced matching F2 gives every C_HEG clique
// at least K outgoing edges (Type I) or an adjacent easy clique (Type II);
// the sparsified matching F3 leaves exactly 2 outgoing edges per clique
// and at most (Delta - 2*eps*Delta - 1)/2 incoming ones.
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E4", "Lemmas 12/13: balanced and sparsified matchings F2, F3");

  struct Cell {
    int delta;
    double easy;
    std::uint64_t seed;
  };
  std::vector<Cell> cells;
  for (const int delta : {16, 32})
    for (const double easy : {0.0, 0.2})
      for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull})
        cells.push_back({delta, easy, seed});

  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<DeltaColoringResult>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto inst =
            cached_mixed(48, c.delta, c.easy, c.seed, &ctx.ledger());
        auto opt = scaled_options(c.delta);
        opt.engine = ctx.engine();
        return delta_color_dense(inst->graph, opt);
      });

  Table t({"Delta", "easy%", "seed", "typeI", "typeII", "minOut(F2)",
           "minOut(F3)", "maxIn(F3)", "bound", "fallbacks", "lemma13"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const auto& st = rows[i].hard_stats;
    const auto opt = scaled_options(c.delta);
    const double bound =
        0.5 * (c.delta - 2 * opt.acd.epsilon * c.delta - 1);
    t.row(c.delta, static_cast<int>(c.easy * 100), c.seed, st.type1,
          st.type2, st.min_outgoing_f2, st.min_outgoing_f3,
          st.max_incoming_f3, bound, st.split_fallbacks,
          verdict(st.lemma13_ok));
  }
  t.print();
  std::cout << driver.report() << "\n";
}

void BM_MatchingPhases(benchmark::State& state) {
  const auto inst = cached_hard(96, 16, 4);
  for (auto _ : state) {
    const auto res = delta_color_dense(inst->graph, scaled_options(16));
    benchmark::DoNotOptimize(res.hard_stats.f3_edges);
  }
}
BENCHMARK(BM_MatchingPhases)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
