// E8 — Lemma 5 [BMN+25 role]: hyperedge grabbing is solvable in
// O(log_{delta/r} n) rounds when the minimum degree exceeds the rank.
//
// Sweep n and the delta/r ratio on random multihypergraphs; report the
// distributed solver's simulated rounds (log n shape, flattening as the
// expansion delta/r grows) and validate each solution.
#include <benchmark/benchmark.h>

#include "bench_support/sweep.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E8", "Lemma 5: HEG in O(log_{delta/r} n) rounds");
  const std::vector<std::pair<int, int>> targets = {{6, 5}, {8, 4}, {12, 4}};

  struct Cell {
    int delta;
    int rank;
    int n;
  };
  std::vector<Cell> cells;
  for (const auto& [dlt, rank] : targets)
    for (int n = 256; n <= 16384; n *= 4) cells.push_back({dlt, rank, n});

  struct Row {
    int min_degree = 0;
    int rank = 0;
    int rounds = 0;
    bool ok = false;
  };
  SweepDriver driver(sweep_options_from_env());
  const auto rows = driver.run<Row>(
      cells.size(), [&](std::size_t i, CellContext& ctx) {
        const Cell& c = cells[i];
        const auto h = cached_hypergraph(c.n, c.delta, c.rank, 100 + c.n,
                                         &ctx.ledger());
        RoundLedger ledger;
        const HegResult res = solve_heg(*h, ledger);
        Row row;
        row.min_degree = h->min_degree();
        row.rank = h->rank();
        row.rounds = res.rounds;
        row.ok = res.complete && is_valid_heg(*h, res);
        return row;
      });

  std::size_t at = 0;
  for (const auto& [dlt, rank] : targets) {
    Table t({"n", "delta", "rank", "ratio", "rounds", "valid"});
    std::vector<double> ns, rounds;
    for (int n = 256; n <= 16384; n *= 4, ++at) {
      const Row& row = rows[at];
      t.row(n, row.min_degree, row.rank,
            static_cast<double>(row.min_degree) / row.rank, row.rounds,
            row.ok ? "yes" : "NO");
      ns.push_back(n);
      rounds.push_back(row.rounds);
    }
    std::cout << "target min-degree " << dlt << ", rank " << rank << ":\n";
    t.print();
    const LinearFit fit = fit_log(ns, rounds);
    std::cout << "fit rounds ~ " << fit.intercept << " + " << fit.slope
              << " * log2(n)   (r2 = " << fit.r2 << ")\n\n";
  }
  std::cout << "Cross-check: the centralized Hopcroft-Karp-style matcher\n"
               "agrees on feasibility for every instance (asserted in the\n"
               "test suite).\n";
  std::cout << driver.report() << "\n";
}

void BM_HegSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto h = cached_hypergraph(n, 8, 4, 42);
  for (auto _ : state) {
    RoundLedger ledger;
    const auto res = solve_heg(*h, ledger);
    benchmark::DoNotOptimize(res.grabbed_edge.data());
    state.counters["rounds"] = res.rounds;
  }
}
BENCHMARK(BM_HegSolver)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
