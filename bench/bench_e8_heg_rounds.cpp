// E8 — Lemma 5 [BMN+25 role]: hyperedge grabbing is solvable in
// O(log_{delta/r} n) rounds when the minimum degree exceeds the rank.
//
// Sweep n and the delta/r ratio on random multihypergraphs; report the
// distributed solver's simulated rounds (log n shape, flattening as the
// expansion delta/r grows) and validate each solution.
#include <benchmark/benchmark.h>

#include "bench_support/table.hpp"
#include "bench_support/workloads.hpp"
#include "common/stats.hpp"
#include "deltacolor.hpp"

namespace {

using namespace deltacolor;
using namespace deltacolor::bench;

void run_tables() {
  banner("E8", "Lemma 5: HEG in O(log_{delta/r} n) rounds");
  for (const auto& [dlt, rank] : {std::pair{6, 5}, std::pair{8, 4},
                                 std::pair{12, 4}}) {
    Table t({"n", "delta", "rank", "ratio", "rounds", "valid"});
    std::vector<double> ns, rounds;
    for (int n = 256; n <= 16384; n *= 4) {
      const Hypergraph h = random_hypergraph(n, dlt, rank, 100 + n);
      RoundLedger ledger;
      const HegResult res = solve_heg(h, ledger);
      const bool ok = res.complete && is_valid_heg(h, res);
      t.row(n, h.min_degree(), h.rank(),
            static_cast<double>(h.min_degree()) / h.rank(), res.rounds,
            ok ? "yes" : "NO");
      ns.push_back(n);
      rounds.push_back(res.rounds);
    }
    std::cout << "target min-degree " << dlt << ", rank " << rank << ":\n";
    t.print();
    const LinearFit fit = fit_log(ns, rounds);
    std::cout << "fit rounds ~ " << fit.intercept << " + " << fit.slope
              << " * log2(n)   (r2 = " << fit.r2 << ")\n\n";
  }
  std::cout << "Cross-check: the centralized Hopcroft-Karp-style matcher\n"
               "agrees on feasibility for every instance (asserted in the\n"
               "test suite).\n";
}

void BM_HegSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Hypergraph h = random_hypergraph(n, 8, 4, 42);
  for (auto _ : state) {
    RoundLedger ledger;
    const auto res = solve_heg(h, ledger);
    benchmark::DoNotOptimize(res.grabbed_edge.data());
    state.counters["rounds"] = res.rounds;
  }
}
BENCHMARK(BM_HegSolver)->Arg(512)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
