# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generators[1]_include.cmake")
include("/root/repo/build/tests/test_primitives[1]_include.cmake")
include("/root/repo/build/tests/test_splitting_heg[1]_include.cmake")
include("/root/repo/build/tests/test_acd_loopholes[1]_include.cmake")
include("/root/repo/build/tests/test_delta_coloring[1]_include.cmake")
include("/root/repo/build/tests/test_randomized[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_color_reduction[1]_include.cmake")
include("/root/repo/build/tests/test_easy_coloring[1]_include.cmake")
include("/root/repo/build/tests/test_message_passing[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_forest_matching[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rounds_accounting[1]_include.cmake")
