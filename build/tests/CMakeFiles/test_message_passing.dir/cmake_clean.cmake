file(REMOVE_RECURSE
  "CMakeFiles/test_message_passing.dir/test_message_passing.cpp.o"
  "CMakeFiles/test_message_passing.dir/test_message_passing.cpp.o.d"
  "test_message_passing"
  "test_message_passing.pdb"
  "test_message_passing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_passing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
