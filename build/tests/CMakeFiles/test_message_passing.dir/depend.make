# Empty dependencies file for test_message_passing.
# This may be replaced when dependencies are built.
