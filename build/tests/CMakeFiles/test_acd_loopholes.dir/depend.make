# Empty dependencies file for test_acd_loopholes.
# This may be replaced when dependencies are built.
