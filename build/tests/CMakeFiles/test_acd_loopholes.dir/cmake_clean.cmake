file(REMOVE_RECURSE
  "CMakeFiles/test_acd_loopholes.dir/test_acd_loopholes.cpp.o"
  "CMakeFiles/test_acd_loopholes.dir/test_acd_loopholes.cpp.o.d"
  "test_acd_loopholes"
  "test_acd_loopholes.pdb"
  "test_acd_loopholes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acd_loopholes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
