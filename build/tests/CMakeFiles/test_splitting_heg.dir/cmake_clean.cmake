file(REMOVE_RECURSE
  "CMakeFiles/test_splitting_heg.dir/test_splitting_heg.cpp.o"
  "CMakeFiles/test_splitting_heg.dir/test_splitting_heg.cpp.o.d"
  "test_splitting_heg"
  "test_splitting_heg.pdb"
  "test_splitting_heg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitting_heg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
