# Empty dependencies file for test_splitting_heg.
# This may be replaced when dependencies are built.
