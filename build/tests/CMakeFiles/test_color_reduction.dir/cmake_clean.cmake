file(REMOVE_RECURSE
  "CMakeFiles/test_color_reduction.dir/test_color_reduction.cpp.o"
  "CMakeFiles/test_color_reduction.dir/test_color_reduction.cpp.o.d"
  "test_color_reduction"
  "test_color_reduction.pdb"
  "test_color_reduction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_color_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
