# Empty dependencies file for test_color_reduction.
# This may be replaced when dependencies are built.
