file(REMOVE_RECURSE
  "CMakeFiles/test_rounds_accounting.dir/test_rounds_accounting.cpp.o"
  "CMakeFiles/test_rounds_accounting.dir/test_rounds_accounting.cpp.o.d"
  "test_rounds_accounting"
  "test_rounds_accounting.pdb"
  "test_rounds_accounting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rounds_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
