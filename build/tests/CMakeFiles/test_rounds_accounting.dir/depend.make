# Empty dependencies file for test_rounds_accounting.
# This may be replaced when dependencies are built.
