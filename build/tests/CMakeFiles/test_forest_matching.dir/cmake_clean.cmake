file(REMOVE_RECURSE
  "CMakeFiles/test_forest_matching.dir/test_forest_matching.cpp.o"
  "CMakeFiles/test_forest_matching.dir/test_forest_matching.cpp.o.d"
  "test_forest_matching"
  "test_forest_matching.pdb"
  "test_forest_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forest_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
