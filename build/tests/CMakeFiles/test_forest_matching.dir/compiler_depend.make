# Empty compiler generated dependencies file for test_forest_matching.
# This may be replaced when dependencies are built.
