# Empty compiler generated dependencies file for test_easy_coloring.
# This may be replaced when dependencies are built.
