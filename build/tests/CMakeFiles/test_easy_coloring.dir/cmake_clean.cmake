file(REMOVE_RECURSE
  "CMakeFiles/test_easy_coloring.dir/test_easy_coloring.cpp.o"
  "CMakeFiles/test_easy_coloring.dir/test_easy_coloring.cpp.o.d"
  "test_easy_coloring"
  "test_easy_coloring.pdb"
  "test_easy_coloring[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_easy_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
