file(REMOVE_RECURSE
  "CMakeFiles/triad_inspector.dir/triad_inspector.cpp.o"
  "CMakeFiles/triad_inspector.dir/triad_inspector.cpp.o.d"
  "triad_inspector"
  "triad_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triad_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
