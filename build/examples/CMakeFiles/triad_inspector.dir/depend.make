# Empty dependencies file for triad_inspector.
# This may be replaced when dependencies are built.
