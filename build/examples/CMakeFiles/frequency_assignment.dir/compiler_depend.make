# Empty compiler generated dependencies file for frequency_assignment.
# This may be replaced when dependencies are built.
