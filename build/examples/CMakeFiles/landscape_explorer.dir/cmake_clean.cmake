file(REMOVE_RECURSE
  "CMakeFiles/landscape_explorer.dir/landscape_explorer.cpp.o"
  "CMakeFiles/landscape_explorer.dir/landscape_explorer.cpp.o.d"
  "landscape_explorer"
  "landscape_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landscape_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
