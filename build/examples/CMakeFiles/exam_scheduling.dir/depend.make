# Empty dependencies file for exam_scheduling.
# This may be replaced when dependencies are built.
