# Empty compiler generated dependencies file for bench_e9_split_discrepancy.
# This may be replaced when dependencies are built.
