file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_split_discrepancy.dir/bench_e9_split_discrepancy.cpp.o"
  "CMakeFiles/bench_e9_split_discrepancy.dir/bench_e9_split_discrepancy.cpp.o.d"
  "bench_e9_split_discrepancy"
  "bench_e9_split_discrepancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_split_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
