# Empty compiler generated dependencies file for bench_e6_rand_rounds_vs_n.
# This may be replaced when dependencies are built.
