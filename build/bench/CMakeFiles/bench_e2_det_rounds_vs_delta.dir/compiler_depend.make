# Empty compiler generated dependencies file for bench_e2_det_rounds_vs_delta.
# This may be replaced when dependencies are built.
