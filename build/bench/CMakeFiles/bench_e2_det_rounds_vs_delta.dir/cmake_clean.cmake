file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_det_rounds_vs_delta.dir/bench_e2_det_rounds_vs_delta.cpp.o"
  "CMakeFiles/bench_e2_det_rounds_vs_delta.dir/bench_e2_det_rounds_vs_delta.cpp.o.d"
  "bench_e2_det_rounds_vs_delta"
  "bench_e2_det_rounds_vs_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_det_rounds_vs_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
