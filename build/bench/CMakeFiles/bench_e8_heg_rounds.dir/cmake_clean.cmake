file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_heg_rounds.dir/bench_e8_heg_rounds.cpp.o"
  "CMakeFiles/bench_e8_heg_rounds.dir/bench_e8_heg_rounds.cpp.o.d"
  "bench_e8_heg_rounds"
  "bench_e8_heg_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_heg_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
