# Empty compiler generated dependencies file for bench_e8_heg_rounds.
# This may be replaced when dependencies are built.
