file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_ablation.dir/bench_e12_ablation.cpp.o"
  "CMakeFiles/bench_e12_ablation.dir/bench_e12_ablation.cpp.o.d"
  "bench_e12_ablation"
  "bench_e12_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
