# Empty compiler generated dependencies file for bench_e5_slack_triads.
# This may be replaced when dependencies are built.
