file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_slack_triads.dir/bench_e5_slack_triads.cpp.o"
  "CMakeFiles/bench_e5_slack_triads.dir/bench_e5_slack_triads.cpp.o.d"
  "bench_e5_slack_triads"
  "bench_e5_slack_triads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_slack_triads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
