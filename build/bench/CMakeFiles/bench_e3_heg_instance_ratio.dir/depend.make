# Empty dependencies file for bench_e3_heg_instance_ratio.
# This may be replaced when dependencies are built.
