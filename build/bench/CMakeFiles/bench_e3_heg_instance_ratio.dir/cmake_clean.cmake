file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_heg_instance_ratio.dir/bench_e3_heg_instance_ratio.cpp.o"
  "CMakeFiles/bench_e3_heg_instance_ratio.dir/bench_e3_heg_instance_ratio.cpp.o.d"
  "bench_e3_heg_instance_ratio"
  "bench_e3_heg_instance_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_heg_instance_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
