file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_sinkless.dir/bench_e10_sinkless.cpp.o"
  "CMakeFiles/bench_e10_sinkless.dir/bench_e10_sinkless.cpp.o.d"
  "bench_e10_sinkless"
  "bench_e10_sinkless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_sinkless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
