# Empty dependencies file for bench_e1_det_rounds_vs_n.
# This may be replaced when dependencies are built.
