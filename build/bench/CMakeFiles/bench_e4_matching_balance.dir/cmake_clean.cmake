file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_matching_balance.dir/bench_e4_matching_balance.cpp.o"
  "CMakeFiles/bench_e4_matching_balance.dir/bench_e4_matching_balance.cpp.o.d"
  "bench_e4_matching_balance"
  "bench_e4_matching_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_matching_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
