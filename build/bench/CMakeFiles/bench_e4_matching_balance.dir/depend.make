# Empty dependencies file for bench_e4_matching_balance.
# This may be replaced when dependencies are built.
