file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_subroutines.dir/bench_e11_subroutines.cpp.o"
  "CMakeFiles/bench_e11_subroutines.dir/bench_e11_subroutines.cpp.o.d"
  "bench_e11_subroutines"
  "bench_e11_subroutines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_subroutines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
