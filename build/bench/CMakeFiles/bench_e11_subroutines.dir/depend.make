# Empty dependencies file for bench_e11_subroutines.
# This may be replaced when dependencies are built.
