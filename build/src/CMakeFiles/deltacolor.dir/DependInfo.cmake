
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acd/acd.cpp" "src/CMakeFiles/deltacolor.dir/acd/acd.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/acd/acd.cpp.o.d"
  "/root/repo/src/baselines/baselines.cpp" "src/CMakeFiles/deltacolor.dir/baselines/baselines.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/baselines/baselines.cpp.o.d"
  "/root/repo/src/baselines/brooks.cpp" "src/CMakeFiles/deltacolor.dir/baselines/brooks.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/baselines/brooks.cpp.o.d"
  "/root/repo/src/bench_support/workloads.cpp" "src/CMakeFiles/deltacolor.dir/bench_support/workloads.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/bench_support/workloads.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/deltacolor.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/delta_coloring.cpp" "src/CMakeFiles/deltacolor.dir/core/delta_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/delta_coloring.cpp.o.d"
  "/root/repo/src/core/easy_coloring.cpp" "src/CMakeFiles/deltacolor.dir/core/easy_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/easy_coloring.cpp.o.d"
  "/root/repo/src/core/hard_coloring.cpp" "src/CMakeFiles/deltacolor.dir/core/hard_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/hard_coloring.cpp.o.d"
  "/root/repo/src/core/hardness.cpp" "src/CMakeFiles/deltacolor.dir/core/hardness.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/hardness.cpp.o.d"
  "/root/repo/src/core/loopholes.cpp" "src/CMakeFiles/deltacolor.dir/core/loopholes.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/loopholes.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/deltacolor.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/core/trace.cpp.o.d"
  "/root/repo/src/graph/checker.cpp" "src/CMakeFiles/deltacolor.dir/graph/checker.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/graph/checker.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/deltacolor.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/deltacolor.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/deltacolor.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/subgraph.cpp" "src/CMakeFiles/deltacolor.dir/graph/subgraph.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/graph/subgraph.cpp.o.d"
  "/root/repo/src/local/ledger.cpp" "src/CMakeFiles/deltacolor.dir/local/ledger.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/local/ledger.cpp.o.d"
  "/root/repo/src/local/message_passing.cpp" "src/CMakeFiles/deltacolor.dir/local/message_passing.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/local/message_passing.cpp.o.d"
  "/root/repo/src/primitives/color_reduction.cpp" "src/CMakeFiles/deltacolor.dir/primitives/color_reduction.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/color_reduction.cpp.o.d"
  "/root/repo/src/primitives/degree_splitting.cpp" "src/CMakeFiles/deltacolor.dir/primitives/degree_splitting.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/degree_splitting.cpp.o.d"
  "/root/repo/src/primitives/forest_coloring.cpp" "src/CMakeFiles/deltacolor.dir/primitives/forest_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/forest_coloring.cpp.o.d"
  "/root/repo/src/primitives/heg.cpp" "src/CMakeFiles/deltacolor.dir/primitives/heg.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/heg.cpp.o.d"
  "/root/repo/src/primitives/linial.cpp" "src/CMakeFiles/deltacolor.dir/primitives/linial.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/linial.cpp.o.d"
  "/root/repo/src/primitives/list_coloring.cpp" "src/CMakeFiles/deltacolor.dir/primitives/list_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/list_coloring.cpp.o.d"
  "/root/repo/src/primitives/maximal_matching.cpp" "src/CMakeFiles/deltacolor.dir/primitives/maximal_matching.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/maximal_matching.cpp.o.d"
  "/root/repo/src/primitives/mis.cpp" "src/CMakeFiles/deltacolor.dir/primitives/mis.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/mis.cpp.o.d"
  "/root/repo/src/primitives/ruling_set.cpp" "src/CMakeFiles/deltacolor.dir/primitives/ruling_set.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/primitives/ruling_set.cpp.o.d"
  "/root/repo/src/randomized/randomized_coloring.cpp" "src/CMakeFiles/deltacolor.dir/randomized/randomized_coloring.cpp.o" "gcc" "src/CMakeFiles/deltacolor.dir/randomized/randomized_coloring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
