file(REMOVE_RECURSE
  "libdeltacolor.a"
)
