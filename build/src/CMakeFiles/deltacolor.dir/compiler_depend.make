# Empty compiler generated dependencies file for deltacolor.
# This may be replaced when dependencies are built.
