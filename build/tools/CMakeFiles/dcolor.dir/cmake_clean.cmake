file(REMOVE_RECURSE
  "CMakeFiles/dcolor.dir/dcolor.cpp.o"
  "CMakeFiles/dcolor.dir/dcolor.cpp.o.d"
  "dcolor"
  "dcolor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcolor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
