# Empty compiler generated dependencies file for dcolor.
# This may be replaced when dependencies are built.
