// Triad inspector: runs Algorithm 2 with artifact capture and exports a
// Graphviz picture of the slack-triad structure — Figures 2-4 of the
// paper rendered from live data.
//
//   $ ./triad_inspector [cliques] [delta] [dot-file]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "deltacolor.hpp"

int main(int argc, char** argv) {
  using namespace deltacolor;
  const int cliques = argc > 1 ? std::atoi(argv[1]) : 8;
  const int delta = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::string dot_path = argc > 3 ? argv[3] : "triads.dot";

  CliqueInstanceOptions gen;
  gen.num_cliques = cliques;
  gen.delta = delta;
  gen.clique_size = delta;
  gen.seed = 11;
  const CliqueInstance inst = clique_blowup_instance(gen);

  PipelineTrace trace;
  DeltaColoringOptions opt = scaled_options(delta);
  opt.hard.trace = &trace;
  const auto res = delta_color_dense(inst.graph, opt);
  std::cout << res.summary() << "\n";
  std::cout << "artifacts: " << trace.summary() << "\n";

  for (std::size_t t = 0; t < trace.triads.size() && t < 5; ++t) {
    const auto& tr = trace.triads[t];
    std::cout << "  triad " << t << ": slack=" << tr.slack << " pair=("
              << tr.pair_in << "," << tr.pair_out << ") clique="
              << tr.clique << " pair_color=" << tr.pair_color
              << (tr.dropped ? " [dropped]" : "") << "\n";
  }
  if (trace.triads.size() > 5)
    std::cout << "  ... " << trace.triads.size() - 5 << " more\n";

  const Acd acd = [&] {
    RoundLedger tmp;
    return compute_acd(inst.graph, tmp, opt.acd);
  }();
  std::ofstream os(dot_path);
  trace.write_dot(os, inst.graph, acd, &res.color);
  std::cout << "wrote " << dot_path
            << " (render with: neato -Tsvg -o triads.svg " << dot_path
            << ")\n";
  return 0;
}
