// Exam scheduling with the randomized algorithm (Theorem 2).
//
// Scenario: course modules form cohorts that all conflict with each other
// (cliques), plus cross-cohort electives. The term has exactly Delta slots.
// The randomized algorithm places T-nodes (pairs of non-conflicting exams
// scheduled into the same reserved slot), shatters the instance, and
// finishes each fragment with the deterministic machinery.
//
//   $ ./exam_scheduling [cohorts] [courses_per_cohort] [seed]
#include <cstdlib>
#include <iostream>

#include "deltacolor.hpp"

int main(int argc, char** argv) {
  using namespace deltacolor;
  const int cohorts = argc > 1 ? std::atoi(argv[1]) : 64;
  const int courses = argc > 2 ? std::atoi(argv[2]) : 16;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  CliqueInstanceOptions gen;
  gen.num_cliques = cohorts;
  gen.delta = courses;
  gen.clique_size = courses;
  gen.seed = seed;
  const CliqueInstance instance = clique_blowup_instance(gen);
  const Graph& g = instance.graph;

  std::cout << "conflict graph: " << g.num_nodes() << " courses, "
            << g.num_edges() << " conflicts, " << g.max_degree()
            << " exam slots available\n";

  const auto result =
      randomized_delta_color(g, scaled_randomized_options(courses, seed));
  std::cout << "schedule found in " << result.ledger.total()
            << " simulated LOCAL rounds\n";
  std::cout << "  T-nodes placed:        " << result.stats.tnodes_placed
            << " / " << result.stats.num_hard << " cohorts\n";
  std::cout << "  shattered fragments:   " << result.stats.components
            << " (largest " << result.stats.max_component_vertices
            << " courses)\n";
  std::cout << "  fragment rounds (max): " << result.stats.max_component_rounds
            << "\n";
  std::cout << "round breakdown:\n" << result.ledger.report();

  if (!is_delta_coloring(g, result.color)) {
    std::cerr << "schedule INVALID\n";
    return 1;
  }
  std::cout << "schedule verified: no two conflicting exams share a slot\n";
  return 0;
}
