// Landscape explorer: measures the round complexity of every distributed
// subroutine on growing graphs — an empirical slice of Figure 1's LCL
// complexity landscape (log*, log Delta, log n tiers) from the paper's
// introduction.
//
//   $ ./landscape_explorer
#include <iomanip>
#include <iostream>

#include "deltacolor.hpp"

namespace {

using namespace deltacolor;

struct Row {
  NodeId n;
  std::int64_t linial, mis, matching, ruling, split, heg, full;
};

Row measure(int cliques, int delta, std::uint64_t seed) {
  CliqueInstanceOptions gen;
  gen.num_cliques = cliques;
  gen.delta = delta;
  gen.clique_size = delta;
  gen.seed = seed;
  const CliqueInstance inst = clique_blowup_instance(gen);
  const Graph& g = inst.graph;
  Row row{};
  row.n = g.num_nodes();
  {
    RoundLedger l;
    linial_coloring(g, l);
    row.linial = l.total();
  }
  {
    RoundLedger l;
    mis_deterministic(g, l);
    row.mis = l.total();
  }
  {
    RoundLedger l;
    maximal_matching_deterministic(g, l);
    row.matching = l.total();
  }
  {
    RoundLedger l;
    ruling_set(g, l);
    row.ruling = l.total();
  }
  {
    RoundLedger l;
    degree_split(g, 2, 64, seed, l);
    row.split = l.total();
  }
  {
    const auto res = delta_color_dense(g, scaled_options(delta));
    row.heg = res.ledger.phase_total("phase1-heg");
    row.full = res.ledger.total();
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "Round complexity of the library's subroutines on hard dense\n"
               "instances (Delta = 16). log*-tier columns stay flat; the\n"
               "HEG column carries the O(log n) dependence of Theorem 1.\n\n";
  std::cout << std::setw(8) << "n" << std::setw(9) << "linial"
            << std::setw(7) << "mis" << std::setw(10) << "matching"
            << std::setw(8) << "ruling" << std::setw(7) << "split"
            << std::setw(7) << "heg" << std::setw(9) << "total\n";
  for (const int cliques : {16, 32, 64, 128, 256, 512}) {
    const Row r = measure(cliques, 16, 11);
    std::cout << std::setw(8) << r.n << std::setw(9) << r.linial
              << std::setw(7) << r.mis << std::setw(10) << r.matching
              << std::setw(8) << r.ruling << std::setw(7) << r.split
              << std::setw(7) << r.heg << std::setw(9) << r.full << "\n";
  }
  std::cout << "\n(log* n growth is invisible at these sizes; the constant\n"
               "Delta^2-sized class-greedy terms dominate the totals, and\n"
               "only the hyperedge-grabbing phase scales with log n.)\n";
  return 0;
}
