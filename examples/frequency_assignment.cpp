// Frequency assignment in a dense backbone network.
//
// Scenario: access points packed into buildings form near-cliques in the
// interference graph (everyone in a building interferes with everyone
// else), plus one inter-building link per AP. The operator owns exactly
// Delta frequency channels — one FEWER than the greedy Delta+1 bound —
// so the assignment needs the paper's machinery, not plain greedy.
//
//   $ ./frequency_assignment [buildings] [aps_per_building]
#include <cstdlib>
#include <iostream>

#include "deltacolor.hpp"

int main(int argc, char** argv) {
  using namespace deltacolor;
  const int buildings = argc > 1 ? std::atoi(argv[1]) : 48;
  const int aps = argc > 2 ? std::atoi(argv[2]) : 16;

  CliqueInstanceOptions gen;
  gen.num_cliques = buildings;
  gen.delta = aps;        // intra-building (aps-1) + 1 uplink
  gen.clique_size = aps;
  gen.easy_fraction = 0.2;  // some buildings run one AP pair decoupled
  gen.seed = 7;
  const CliqueInstance instance = clique_blowup_instance(gen);
  const Graph& g = instance.graph;
  const int channels = g.max_degree();

  std::cout << "interference graph: " << g.num_nodes() << " access points, "
            << g.num_edges() << " interference pairs, degree " << channels
            << "\n";

  // The greedy baseline needs Delta+1 channels.
  RoundLedger greedy_ledger;
  const auto greedy = greedy_delta_plus_one(g, greedy_ledger);
  const auto greedy_report = check_coloring(g, greedy);
  std::cout << "greedy baseline: " << greedy_report.colors_used
            << " channels (palette " << channels + 1 << "), "
            << greedy_ledger.total() << " rounds\n";

  // The paper's algorithm fits into exactly Delta channels.
  const auto result = delta_color_dense(g, scaled_options(aps));
  const auto report = check_coloring(g, result.color);
  std::cout << "delta-coloring:  " << report.colors_used
            << " channels (palette " << channels << "), "
            << result.ledger.total() << " rounds\n";
  std::cout << "  hard buildings: " << result.num_hard
            << ", easy buildings: " << result.num_easy
            << ", slack triads placed: " << result.hard_stats.num_triads
            << "\n";

  if (!is_delta_coloring(g, result.color)) {
    std::cerr << "assignment INVALID\n";
    return 1;
  }
  // Channel-usage histogram.
  std::vector<int> usage(static_cast<std::size_t>(channels), 0);
  for (const Color c : result.color) ++usage[static_cast<std::size_t>(c)];
  int min_use = usage[0], max_use = usage[0];
  for (const int u : usage) {
    min_use = std::min(min_use, u);
    max_use = std::max(max_use, u);
  }
  std::cout << "channel reuse: " << min_use << ".." << max_use
            << " APs per channel; the spectrum saving over greedy is one "
               "full channel\n";
  return 0;
}
