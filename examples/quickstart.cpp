// Quickstart: build a dense graph, Delta-color it with the deterministic
// algorithm (Theorem 1), and inspect the result.
//
//   $ ./quickstart [num_cliques] [delta]
#include <cstdlib>
#include <iostream>

#include "deltacolor.hpp"

int main(int argc, char** argv) {
  using namespace deltacolor;
  const int num_cliques = argc > 1 ? std::atoi(argv[1]) : 32;
  const int delta = argc > 2 ? std::atoi(argv[2]) : 16;

  // 1. A dense instance: cliques of size Delta, every vertex of degree
  //    exactly Delta, no small loopholes — the paper's hard case.
  CliqueInstanceOptions gen;
  gen.num_cliques = num_cliques;
  gen.delta = delta;
  gen.clique_size = delta;
  gen.seed = 42;
  const CliqueInstance instance = clique_blowup_instance(gen);
  const Graph& g = instance.graph;
  std::cout << "graph: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " Delta=" << g.max_degree() << " cliques="
            << instance.cliques.size() << "\n";

  // 2. Delta-color it. scaled_options() adapts the paper's epsilon = 1/63
  //    (meant for Delta >= 63) to moderate degrees.
  const DeltaColoringResult result = delta_color_dense(g, scaled_options(delta));

  // 3. Inspect.
  std::cout << "result: " << result.summary() << "\n";
  std::cout << "colors used: " << check_coloring(g, result.color).colors_used
            << " of a palette of " << g.max_degree() << "\n";
  std::cout << "round breakdown:\n" << result.ledger.report();

  // 4. Independent validation.
  if (!is_delta_coloring(g, result.color)) {
    std::cerr << "coloring INVALID\n";
    return 1;
  }
  std::cout << "coloring verified: proper, complete, palette [0, Delta)\n";
  return 0;
}
